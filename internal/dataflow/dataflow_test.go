package dataflow

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func bits(is ...int) func(int) BitSet {
	return func(n int) BitSet {
		b := NewBitSet(n)
		for _, i := range is {
			b.Set(i)
		}
		return b
	}
}

func TestBitSetOps(t *testing.T) {
	b := NewBitSet(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Has(0) || !b.Has(64) || !b.Has(129) || b.Has(1) {
		t.Fatal("Set/Has broken")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	c := b.Clone()
	c.AndNot(b)
	if c.Count() != 0 {
		t.Fatal("AndNot of self not empty")
	}
	if b.Count() != 3 {
		t.Fatal("Clone aliases original")
	}
	u := NewBitSet(130)
	if !u.Union(b) {
		t.Fatal("Union did not report change")
	}
	if u.Union(b) {
		t.Fatal("Union reported change on no-op")
	}
	u.Reset()
	if u.Count() != 0 {
		t.Fatal("Reset left bits")
	}
	all := NewBitSet(130)
	all.SetAll(130)
	if all.Count() != 130 {
		t.Fatalf("SetAll count = %d", all.Count())
	}
}

// Backward liveness over a diamond:
//
//	B0 -> B1, B2; B1 -> B3; B2 -> B3
//
// Bit 0 read in B1, bit 1 read in B3, bit 0 killed in B2.
func TestSolveBackwardDiamond(t *testing.T) {
	n, nbits := 4, 2
	p := Problem{
		NumBlocks: n,
		Succs:     [][]int{{1, 2}, {3}, {3}, {}},
		Bits:      nbits,
		Gen:       []BitSet{nil, bits(0)(nbits), nil, bits(1)(nbits)},
		Kill:      []BitSet{nil, nil, bits(0)(nbits), nil},
		Dir:       Backward,
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// In[3] = gen = {1}; In[1] = {0,1}; In[2] = {1}; In[0] = {0,1}.
	check := func(b int, want ...int) {
		t.Helper()
		w := bits(want...)(nbits)
		for i := 0; i < nbits; i++ {
			if sol.In[b].Has(i) != w.Has(i) {
				t.Errorf("In[%d] bit %d = %v, want %v", b, i, sol.In[b].Has(i), w.Has(i))
			}
		}
	}
	check(3, 1)
	check(1, 0, 1)
	check(2, 1)
	check(0, 0, 1)
}

// Forward reaching-facts over a loop: boundary fact 0 enters B0, B1
// kills it and gens 1, the loop B1<->B1 stays stable.
func TestSolveForwardLoop(t *testing.T) {
	nbits := 2
	p := Problem{
		NumBlocks: 3,
		Succs:     [][]int{{1}, {1, 2}, {}},
		Bits:      nbits,
		Gen:       []BitSet{nil, bits(1)(nbits), nil},
		Kill:      []BitSet{nil, bits(0)(nbits), nil},
		Boundary:  bits(0)(nbits),
		Dir:       Forward,
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.In[0].Has(0) {
		t.Error("boundary fact missing at entry")
	}
	if sol.Out[1].Has(0) || !sol.Out[1].Has(1) {
		t.Errorf("Out[1] = kill 0 gen 1 expected, got %v %v", sol.Out[1].Has(0), sol.Out[1].Has(1))
	}
	if sol.In[2].Has(0) || !sol.In[2].Has(1) {
		t.Error("In[2] should see only the generated fact")
	}
}

// The solver must be deterministic: identical problems yield identical
// Steps and vectors.
func TestSolveDeterministic(t *testing.T) {
	build := func() (*Solution, error) {
		return Solve(Problem{
			NumBlocks: 5,
			Succs:     [][]int{{1, 2}, {3}, {3, 1}, {4}, {}},
			Bits:      7,
			Gen:       []BitSet{bits(0)(7), bits(1)(7), bits(2)(7), bits(3, 4)(7), nil},
			Kill:      []BitSet{nil, bits(0)(7), nil, bits(1)(7), nil},
			Dir:       Backward,
		})
	}
	a, err := build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := build()
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps {
		t.Fatalf("Steps differ: %d vs %d", a.Steps, b.Steps)
	}
	for i := range a.In {
		for j := 0; j < 7; j++ {
			if a.In[i].Has(j) != b.In[i].Has(j) || a.Out[i].Has(j) != b.Out[i].Has(j) {
				t.Fatalf("vectors differ at block %d bit %d", i, j)
			}
		}
	}
}

func TestSolveBudget(t *testing.T) {
	p := Problem{
		NumBlocks: 3,
		Succs:     [][]int{{1}, {2}, {}},
		Bits:      1,
		Gen:       []BitSet{nil, nil, bits(0)(1)},
		Budget:    1, // cannot finish
		Dir:       Backward,
	}
	sol, err := Solve(p)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if sol == nil {
		t.Fatal("partial solution missing")
	}
	// An honest budget completes.
	p.Budget = 0
	if _, err := Solve(p); err != nil {
		t.Fatalf("default budget failed: %v", err)
	}
}

// TestSolveBudgetNamesUnit pins the exhaustion-path contract: the error
// names the unit that hit the budget (so lint Failure records identify
// the function), falls back to a placeholder when unnamed, and still
// returns the partial solution.
func TestSolveBudgetNamesUnit(t *testing.T) {
	p := Problem{
		NumBlocks: 3,
		Succs:     [][]int{{1}, {2}, {}},
		Bits:      1,
		Gen:       []BitSet{nil, nil, bits(0)(1)},
		Budget:    1,
		Unit:      "Widget::resize",
		Dir:       Backward,
	}
	sol, err := Solve(p)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if sol == nil || sol.Steps != 1 {
		t.Fatalf("partial solution missing or wrong steps: %+v", sol)
	}
	if !strings.Contains(err.Error(), "Widget::resize") {
		t.Fatalf("budget error does not name the unit: %q", err)
	}
	p.Unit = ""
	_, err = Solve(p)
	if !errors.Is(err, ErrBudget) || !strings.Contains(err.Error(), "<unnamed>") {
		t.Fatalf("unnamed overrun missing placeholder: %v", err)
	}
}

func TestSolveCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Problem{
		NumBlocks: 2,
		Succs:     [][]int{{1}, {}},
		Bits:      1,
		Ctx:       ctx,
		Dir:       Forward,
	}
	_, err := Solve(p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSolveEmpty(t *testing.T) {
	sol, err := Solve(Problem{})
	if err != nil || sol == nil {
		t.Fatalf("empty problem: %v", err)
	}
}

func TestDefaultBudgetSuffices(t *testing.T) {
	// A long chain with many bits converges comfortably inside the
	// automatic budget.
	const n = 200
	succs := make([][]int, n)
	gen := make([]BitSet, n)
	for i := 0; i < n-1; i++ {
		succs[i] = []int{i + 1}
	}
	gen[n-1] = bits(0, 1, 2)(8)
	sol, err := Solve(Problem{NumBlocks: n, Succs: succs, Bits: 8, Gen: gen, Dir: Backward})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.In[0].Has(0) {
		t.Fatal("fact did not propagate to entry")
	}
}
