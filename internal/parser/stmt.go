package parser

import (
	"deadmembers/internal/ast"
	"deadmembers/internal/token"
)

// parseBlock parses `{ stmt* }`.
func (p *Parser) parseBlock() *ast.BlockStmt {
	lb := p.expect(token.LBrace)
	b := &ast.BlockStmt{}
	setPos(b, lb.Pos)
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		before := p.pos
		s := p.parseStmt()
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
		if p.pos == before {
			p.next()
			p.panick = false
		}
	}
	p.expect(token.RBrace)
	return b
}

// parseStmt parses one statement.
func (p *Parser) parseStmt() ast.Stmt {
	defer p.exitDepth()
	if !p.enterDepth() {
		return p.depthLimitedStmt()
	}
	p.panick = false // each statement may report fresh errors
	start := p.cur().Pos
	switch p.kind() {
	case token.LBrace:
		return p.parseBlock()
	case token.Semicolon:
		p.next()
		b := &ast.BlockStmt{} // empty statement normalizes to empty block
		setPos(b, start)
		return b
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		return p.parseWhile()
	case token.KwDo:
		return p.parseDoWhile()
	case token.KwFor:
		return p.parseFor()
	case token.KwSwitch:
		return p.parseSwitch()
	case token.KwReturn:
		p.next()
		r := &ast.ReturnStmt{}
		setPos(r, start)
		if !p.at(token.Semicolon) {
			r.X = p.parseExpr()
		}
		p.expect(token.Semicolon)
		return r
	case token.KwBreak:
		p.next()
		p.expect(token.Semicolon)
		b := &ast.BreakStmt{}
		setPos(b, start)
		return b
	case token.KwContinue:
		p.next()
		p.expect(token.Semicolon)
		c := &ast.ContinueStmt{}
		setPos(c, start)
		return c
	}

	if p.startsDecl() {
		return p.parseDeclStmt()
	}

	// Expression statement.
	e := p.parseExpr()
	p.expect(token.Semicolon)
	es := &ast.ExprStmt{X: e}
	setPos(es, start)
	return es
}

// depthLimitedStmt stands in for a statement abandoned at the nesting
// limit, consuming one token to guarantee progress.
func (p *Parser) depthLimitedStmt() ast.Stmt {
	b := &ast.BlockStmt{}
	setPos(b, p.cur().Pos)
	if !p.at(token.EOF) {
		p.next()
	}
	return b
}

// startsDecl reports whether the statement at the cursor is a local
// variable declaration rather than an expression. A type-name start is a
// declaration unless it is immediately used as an expression (e.g. a
// function-style cast, which MC++ does not have, so type start suffices),
// except that a bare class name followed by `::` is an expression
// (`C::m` qualified reference).
func (p *Parser) startsDecl() bool {
	if !p.startsType() {
		return false
	}
	if p.at(token.Ident) && p.peek(1).Kind == token.Scope {
		// `C::*` is a member-pointer declarator only when preceded by a
		// base type, not at statement start; `C::m` at statement start is
		// an expression.
		return false
	}
	return true
}

// parseDeclStmt parses a local declaration statement.
func (p *Parser) parseDeclStmt() ast.Stmt {
	start := p.cur().Pos
	typ := p.parseType()
	name := p.expect(token.Ident)
	v := p.finishVar(name.Text, typ)
	setPos(v, start)
	ds := &ast.DeclStmt{Var: v}
	setPos(ds, start)
	return ds
}

func (p *Parser) parseIf() ast.Stmt {
	kw := p.next()
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	s := &ast.IfStmt{Cond: cond}
	setPos(s, kw.Pos)
	s.Then = p.parseStmt()
	if p.accept(token.KwElse) {
		s.Else = p.parseStmt()
	}
	return s
}

func (p *Parser) parseWhile() ast.Stmt {
	kw := p.next()
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	s := &ast.WhileStmt{Cond: cond}
	setPos(s, kw.Pos)
	s.Body = p.parseStmt()
	return s
}

func (p *Parser) parseDoWhile() ast.Stmt {
	kw := p.next()
	s := &ast.DoWhileStmt{}
	setPos(s, kw.Pos)
	s.Body = p.parseStmt()
	p.expect(token.KwWhile)
	p.expect(token.LParen)
	s.Cond = p.parseExpr()
	p.expect(token.RParen)
	p.expect(token.Semicolon)
	return s
}

func (p *Parser) parseFor() ast.Stmt {
	kw := p.next()
	p.expect(token.LParen)
	s := &ast.ForStmt{}
	setPos(s, kw.Pos)
	if !p.at(token.Semicolon) {
		if p.startsDecl() {
			start := p.cur().Pos
			typ := p.parseType()
			name := p.expect(token.Ident)
			v := p.finishVar(name.Text, typ) // consumes the ';'
			setPos(v, start)
			ds := &ast.DeclStmt{Var: v}
			setPos(ds, start)
			s.Init = ds
		} else {
			e := p.parseExpr()
			es := &ast.ExprStmt{X: e}
			setPos(es, e.Pos())
			s.Init = es
			p.expect(token.Semicolon)
		}
	} else {
		p.next()
	}
	if !p.at(token.Semicolon) {
		s.Cond = p.parseExpr()
	}
	p.expect(token.Semicolon)
	if !p.at(token.RParen) {
		s.Post = p.parseExpr()
	}
	p.expect(token.RParen)
	s.Body = p.parseStmt()
	return s
}

func (p *Parser) parseSwitch() ast.Stmt {
	kw := p.next()
	p.expect(token.LParen)
	x := p.parseExpr()
	p.expect(token.RParen)
	s := &ast.SwitchStmt{X: x}
	setPos(s, kw.Pos)
	p.expect(token.LBrace)
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		var c ast.SwitchCase
		setPos(&c, p.cur().Pos)
		switch {
		case p.accept(token.KwCase):
			c.Values = append(c.Values, p.parseExpr())
			p.expect(token.Colon)
			// Adjacent `case a: case b:` labels share one body.
			for p.at(token.KwCase) {
				p.next()
				c.Values = append(c.Values, p.parseExpr())
				p.expect(token.Colon)
			}
		case p.accept(token.KwDefault):
			p.expect(token.Colon)
		default:
			p.errorf("expected case or default in switch, found %s", p.cur())
			p.sync(token.RBrace)
			continue
		}
		for !p.at(token.KwCase) && !p.at(token.KwDefault) && !p.at(token.RBrace) && !p.at(token.EOF) {
			before := p.pos
			st := p.parseStmt()
			if st != nil {
				c.Body = append(c.Body, st)
			}
			if p.pos == before {
				p.next()
				p.panick = false
			}
		}
		s.Cases = append(s.Cases, c)
	}
	p.expect(token.RBrace)
	return s
}
