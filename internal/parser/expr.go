package parser

import (
	"strconv"

	"deadmembers/internal/ast"
	"deadmembers/internal/lexer"
	"deadmembers/internal/token"
)

// parseExpr parses a full expression (lowest precedence: assignment).
// MC++ has no comma operator; commas separate arguments only.
func (p *Parser) parseExpr() ast.Expr { return p.parseAssignExpr() }

// parseAssignExpr parses assignment (right-associative) and below. It
// carries a depth guard of its own because assignment and ternary chains
// recurse through here while no parseUnaryExpr frame is live.
func (p *Parser) parseAssignExpr() ast.Expr {
	defer p.exitDepth()
	if !p.enterDepth() {
		return p.depthLimitedExpr()
	}
	lhs := p.parseCondExpr()
	if p.kind().IsAssignOp() {
		op := p.next()
		rhs := p.parseAssignExpr()
		a := &ast.Assign{Op: op.Kind, LHS: lhs, RHS: rhs}
		setPos(a, lhs.Pos())
		return a
	}
	return lhs
}

// parseCondExpr parses the ternary conditional and below.
func (p *Parser) parseCondExpr() ast.Expr {
	cond := p.parseBinaryExpr(1)
	if !p.at(token.Question) {
		return cond
	}
	p.next()
	then := p.parseAssignExpr()
	p.expect(token.Colon)
	els := p.parseAssignExpr()
	c := &ast.Cond{C: cond, Then: then, Else: els}
	setPos(c, cond.Pos())
	return c
}

// parseBinaryExpr implements precedence climbing for binary operators.
func (p *Parser) parseBinaryExpr(minPrec int) ast.Expr {
	lhs := p.parseUnaryExpr()
	for {
		prec := p.kind().Precedence()
		if prec < minPrec || prec == 0 {
			return lhs
		}
		op := p.next()
		rhs := p.parseBinaryExpr(prec + 1)
		b := &ast.Binary{Op: op.Kind, X: lhs, Y: rhs}
		setPos(b, lhs.Pos())
		lhs = b
	}
}

// parseUnaryExpr parses prefix operators, casts, new/delete, and sizeof.
// Every expression derivation passes through here before reaching a
// primary, so this is where the nesting-depth guard lives.
func (p *Parser) parseUnaryExpr() ast.Expr {
	defer p.exitDepth()
	if !p.enterDepth() {
		return p.depthLimitedExpr()
	}
	start := p.cur().Pos
	switch p.kind() {
	case token.Minus, token.Not, token.Tilde, token.Star, token.Inc, token.Dec:
		op := p.next()
		x := p.parseUnaryExpr()
		u := &ast.Unary{Op: op.Kind, X: x}
		setPos(u, start)
		return u
	case token.Amp:
		p.next()
		// `&C::m` forms a pointer-to-member constant.
		if p.at(token.Ident) && p.peek(1).Kind == token.Scope && p.peek(2).Kind == token.Ident {
			cls := p.next()
			p.next()
			name := p.next()
			qi := &ast.QualifiedIdent{Class: cls.Text, Name: name.Text}
			setPos(qi, cls.Pos)
			u := &ast.Unary{Op: token.Amp, X: qi}
			setPos(u, start)
			return u
		}
		x := p.parseUnaryExpr()
		u := &ast.Unary{Op: token.Amp, X: x}
		setPos(u, start)
		return u
	case token.KwNew:
		return p.parseNew()
	case token.KwDelete:
		p.next()
		d := &ast.Delete{}
		setPos(d, start)
		if p.accept(token.LBracket) {
			p.expect(token.RBracket)
			d.Array = true
		}
		d.X = p.parseUnaryExpr()
		return d
	case token.KwSizeof:
		return p.parseSizeof()
	case token.LParen:
		// Cast `(T)e` vs parenthesized expression.
		if p.isCastStart() {
			lp := p.next()
			typ := p.parseType()
			p.expect(token.RParen)
			x := p.parseUnaryExpr()
			c := &ast.Cast{Type: typ, X: x}
			setPos(c, lp.Pos)
			return c
		}
	}
	return p.parsePostfixExpr()
}

// depthLimitedExpr stands in for an expression abandoned at the nesting
// limit. One token is consumed so the surrounding recovery loops are
// guaranteed to make progress while the stack unwinds.
func (p *Parser) depthLimitedExpr() ast.Expr {
	e := &ast.IntLit{}
	setPos(e, p.cur().Pos)
	if !p.at(token.EOF) {
		p.next()
	}
	return e
}

// isCastStart reports whether the cursor sits at `(` beginning a C-style
// cast rather than a parenthesized expression. The content must start a
// type and the matching `)` must be followed by a cast operand.
func (p *Parser) isCastStart() bool {
	if !p.at(token.LParen) {
		return false
	}
	save := p.pos
	defer func() { p.pos = save }()
	p.next()
	if !p.startsType() {
		return false
	}
	// A class name followed by `::` that is not a member-pointer declarator
	// is an expression like (C::m).
	p.parseTypeSilently()
	return p.at(token.RParen)
}

// parseTypeSilently advances over a type without emitting diagnostics.
func (p *Parser) parseTypeSilently() {
	saved := p.panick
	p.panick = true // suppress diagnostics during speculation
	p.parseType()
	p.panick = saved
}

// parseNew parses `new T(args)`, `new T[len]`.
func (p *Parser) parseNew() ast.Expr {
	kw := p.next()
	n := &ast.New{}
	setPos(n, kw.Pos)
	n.Type = p.parseType()
	if p.accept(token.LBracket) {
		n.Len = p.parseExpr()
		p.expect(token.RBracket)
		return n
	}
	if p.accept(token.LParen) {
		if !p.at(token.RParen) {
			n.Args = append(n.Args, p.parseAssignExpr())
			for p.accept(token.Comma) {
				n.Args = append(n.Args, p.parseAssignExpr())
			}
		}
		p.expect(token.RParen)
	}
	return n
}

// parseSizeof parses `sizeof(T)`, `sizeof(expr)`, or `sizeof expr`.
func (p *Parser) parseSizeof() ast.Expr {
	kw := p.next()
	s := &ast.Sizeof{}
	setPos(s, kw.Pos)
	if p.at(token.LParen) {
		save := p.pos
		p.next()
		if p.startsType() {
			p.parseTypeSilently()
			if p.at(token.RParen) {
				p.pos = save
				p.next()
				s.Type = p.parseType()
				p.expect(token.RParen)
				return s
			}
		}
		p.pos = save
	}
	s.X = p.parseUnaryExpr()
	return s
}

// parsePostfixExpr parses a primary expression followed by postfix
// operators: member access, calls, indexing, ++/--, .* and ->*.
func (p *Parser) parsePostfixExpr() ast.Expr {
	x := p.parsePrimaryExpr()
	for {
		start := p.cur().Pos
		switch p.kind() {
		case token.Dot, token.Arrow:
			op := p.next()
			m := &ast.Member{X: x, Arrow: op.Kind == token.Arrow}
			setPos(m, start)
			name := p.expect(token.Ident)
			if p.at(token.Scope) {
				p.next()
				m.Qual = name.Text
				name = p.expect(token.Ident)
			}
			m.Name = name.Text
			x = m
		case token.DotStar, token.ArrowStar:
			op := p.next()
			ptr := p.parseUnaryExpr()
			d := &ast.MemberPtrDeref{X: x, Arrow: op.Kind == token.ArrowStar, Ptr: ptr}
			setPos(d, start)
			x = d
		case token.LBracket:
			p.next()
			idx := p.parseExpr()
			p.expect(token.RBracket)
			ix := &ast.Index{X: x, I: idx}
			setPos(ix, start)
			x = ix
		case token.LParen:
			p.next()
			c := &ast.Call{Fun: x}
			setPos(c, x.Pos())
			if !p.at(token.RParen) {
				c.Args = append(c.Args, p.parseAssignExpr())
				for p.accept(token.Comma) {
					c.Args = append(c.Args, p.parseAssignExpr())
				}
			}
			p.expect(token.RParen)
			x = c
		case token.Inc, token.Dec:
			op := p.next()
			pf := &ast.Postfix{Op: op.Kind, X: x}
			setPos(pf, start)
			x = pf
		default:
			return x
		}
	}
}

// parsePrimaryExpr parses literals, names, `this`, and parenthesized
// expressions.
func (p *Parser) parsePrimaryExpr() ast.Expr {
	start := p.cur().Pos
	switch p.kind() {
	case token.IntLit:
		t := p.next()
		v, err := strconv.ParseInt(t.Text, 0, 64)
		if err != nil {
			p.errorf("invalid integer literal %s", t.Text)
		}
		e := &ast.IntLit{Value: v}
		setPos(e, start)
		return e
	case token.FloatLit:
		t := p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			p.errorf("invalid floating literal %s", t.Text)
		}
		e := &ast.FloatLit{Value: v}
		setPos(e, start)
		return e
	case token.CharLit:
		t := p.next()
		e := &ast.CharLit{Value: lexer.UnquoteChar(t.Text)}
		setPos(e, start)
		return e
	case token.StringLit:
		t := p.next()
		e := &ast.StringLit{Value: lexer.UnquoteString(t.Text)}
		setPos(e, start)
		return e
	case token.KwTrue, token.KwFalse:
		t := p.next()
		e := &ast.BoolLit{Value: t.Kind == token.KwTrue}
		setPos(e, start)
		return e
	case token.KwNullptr:
		p.next()
		e := &ast.NullLit{}
		setPos(e, start)
		return e
	case token.KwThis:
		p.next()
		e := &ast.ThisExpr{}
		setPos(e, start)
		return e
	case token.Ident:
		t := p.next()
		if p.at(token.Scope) && p.peek(1).Kind == token.Ident {
			p.next()
			name := p.next()
			qi := &ast.QualifiedIdent{Class: t.Text, Name: name.Text}
			setPos(qi, start)
			return qi
		}
		e := &ast.Ident{Name: t.Text}
		setPos(e, start)
		return e
	case token.LParen:
		p.next()
		inner := p.parseExpr()
		p.expect(token.RParen)
		e := &ast.Paren{X: inner}
		setPos(e, start)
		return e
	}
	p.errorf("expected expression, found %s", p.cur())
	e := &ast.IntLit{Value: 0}
	setPos(e, start)
	if !p.at(token.EOF) && !p.at(token.Semicolon) && !p.at(token.RBrace) && !p.at(token.RParen) {
		p.next() // consume the offending token to guarantee progress
	}
	return e
}
