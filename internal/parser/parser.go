// Package parser implements a recursive-descent parser for MC++.
//
// The parser performs a cheap pre-scan of the token stream to collect class
// names (every `class/struct/union NAME`), which resolves the classic
// declaration-vs-expression ambiguity (`Foo * p;`) without feedback from
// semantic analysis. Errors are reported to a diagnostic list and the
// parser recovers at statement/declaration boundaries, so a single file
// yields as many diagnostics as possible in one run.
package parser

import (
	"deadmembers/internal/ast"
	"deadmembers/internal/lexer"
	"deadmembers/internal/source"
	"deadmembers/internal/token"
)

// Parser parses a single file's token stream.
type Parser struct {
	file    *source.File
	toks    []lexer.Token
	pos     int
	diags   *source.DiagnosticList
	types   map[string]bool // class/struct/union names seen in pre-scan
	panick  bool            // in error-recovery mode
	depth   int             // current recursive-descent depth
	tooDeep bool            // nesting-limit diagnostic already reported
}

// MaxNestingDepth bounds recursive-descent depth across expressions and
// statements, so pathologically nested input yields a diagnostic instead
// of overflowing the goroutine stack.
const MaxNestingDepth = 1000

// enterDepth counts one level of recursion and reports false once the
// nesting limit is exceeded. Callers must register `defer p.exitDepth()`
// before calling so the count stays balanced on every return path.
func (p *Parser) enterDepth() bool {
	p.depth++
	if p.depth <= MaxNestingDepth {
		return true
	}
	if !p.tooDeep {
		p.tooDeep = true
		// Report straight to the list: this must surface even in panick mode.
		p.diags.Errorf(p.cur().Pos, "nesting too deep (limit %d)", MaxNestingDepth)
	}
	return false
}

func (p *Parser) exitDepth() { p.depth-- }

// ParseFile parses the given source file, reporting problems to diags.
// A (possibly partial) File is always returned.
func ParseFile(file *source.File, diags *source.DiagnosticList) *ast.File {
	return ParseFileWithTypes(file, diags, nil)
}

// ParseFileWithTypes parses file with additional class names known from
// other files of the same program (multi-file programs need the full set
// to resolve the declaration-vs-expression ambiguity).
func ParseFileWithTypes(file *source.File, diags *source.DiagnosticList, extraTypes map[string]bool) *ast.File {
	toks := lexer.ScanAll(file, diags)
	p := &Parser{file: file, toks: toks, diags: diags, types: map[string]bool{}}
	for name := range extraTypes {
		p.types[name] = true
	}
	p.prescanTypes()
	return p.parseFile()
}

// CollectTypeNames pre-scans a file for declared class/struct/union names
// without parsing it. Scanning diagnostics are suppressed (the real parse
// reports them).
func CollectTypeNames(file *source.File) map[string]bool {
	diags := source.NewDiagnosticList(nil)
	toks := lexer.ScanAll(file, diags)
	out := map[string]bool{}
	for i := 0; i+1 < len(toks); i++ {
		switch toks[i].Kind {
		case token.KwClass, token.KwStruct, token.KwUnion:
			if toks[i+1].Kind == token.Ident {
				out[toks[i+1].Text] = true
			}
		}
	}
	return out
}

// prescanTypes records every identifier following class/struct/union so the
// parser can distinguish type names from expression identifiers.
func (p *Parser) prescanTypes() {
	for i := 0; i+1 < len(p.toks); i++ {
		switch p.toks[i].Kind {
		case token.KwClass, token.KwStruct, token.KwUnion:
			if p.toks[i+1].Kind == token.Ident {
				p.types[p.toks[i+1].Text] = true
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Token stream helpers

func (p *Parser) cur() lexer.Token     { return p.toks[p.pos] }
func (p *Parser) kind() token.Kind     { return p.toks[p.pos].Kind }
func (p *Parser) at(k token.Kind) bool { return p.kind() == k }

func (p *Parser) peek(n int) lexer.Token {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n]
	}
	return p.toks[len(p.toks)-1] // EOF
}

func (p *Parser) next() lexer.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) lexer.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	return lexer.Token{Kind: k, Pos: p.cur().Pos, End: p.cur().Pos}
}

func (p *Parser) errorf(format string, args ...interface{}) {
	if p.panick {
		return // suppress cascading errors until we re-synchronize
	}
	p.panick = true
	p.diags.Errorf(p.cur().Pos, format, args...)
}

// sync skips tokens until a likely declaration/statement boundary.
func (p *Parser) sync(stop ...token.Kind) {
	p.panick = false
	depth := 0
	for !p.at(token.EOF) {
		k := p.kind()
		if depth == 0 {
			for _, s := range stop {
				if k == s {
					return
				}
			}
			if k == token.Semicolon {
				p.next()
				return
			}
		}
		switch k {
		case token.LBrace:
			depth++
		case token.RBrace:
			if depth == 0 {
				return
			}
			depth--
		}
		p.next()
	}
}

// ---------------------------------------------------------------------------
// Type parsing

// startsType reports whether the current token can begin a type.
func (p *Parser) startsType() bool {
	switch p.kind() {
	case token.KwVoid, token.KwBool, token.KwChar, token.KwInt, token.KwDouble,
		token.KwConst, token.KwVolatile:
		return true
	case token.Ident:
		return p.types[p.cur().Text]
	}
	return false
}

// parseType parses cv-qualifiers, a base type name, pointer suffixes, and
// member-pointer declarators (`Elem C::*`). Array suffixes attach to
// declarators, not to the type itself, and are handled by callers.
func (p *Parser) parseType() ast.TypeExpr {
	start := p.cur().Pos
	isConst, isVolatile := false, false
	for {
		if p.accept(token.KwConst) {
			isConst = true
			continue
		}
		if p.accept(token.KwVolatile) {
			isVolatile = true
			continue
		}
		break
	}
	var base ast.TypeExpr
	switch p.kind() {
	case token.KwVoid, token.KwBool, token.KwChar, token.KwInt, token.KwDouble:
		t := p.next()
		nt := &ast.NamedType{Name: t.Text}
		setPos(nt, t.Pos)
		base = nt
	case token.Ident:
		t := p.next()
		nt := &ast.NamedType{Name: t.Text}
		setPos(nt, t.Pos)
		base = nt
	default:
		p.errorf("expected type, found %s", p.cur())
		nt := &ast.NamedType{Name: "int"}
		setPos(nt, start)
		base = nt
	}
	if isConst || isVolatile {
		q := &ast.QualType{Const: isConst, Volatile: isVolatile, Base: base}
		setPos(q, start)
		base = q
	}
	return p.parseTypeSuffix(base)
}

// parseTypeSuffix parses `*` pointer layers and `C::*` member-pointer
// layers following a base type.
func (p *Parser) parseTypeSuffix(base ast.TypeExpr) ast.TypeExpr {
	for {
		switch {
		case p.at(token.Star):
			t := p.next()
			pt := &ast.PointerType{Elem: base}
			setPos(pt, t.Pos)
			base = pt
		case p.at(token.KwConst) || p.at(token.KwVolatile):
			// Trailing cv-qualifiers on pointers (int * const); fold into QualType.
			start := p.cur().Pos
			isConst, isVolatile := false, false
			for p.at(token.KwConst) || p.at(token.KwVolatile) {
				if p.next().Kind == token.KwConst {
					isConst = true
				} else {
					isVolatile = true
				}
			}
			q := &ast.QualType{Const: isConst, Volatile: isVolatile, Base: base}
			setPos(q, start)
			base = q
		case p.at(token.Ident) && p.peek(1).Kind == token.Scope && p.peek(2).Kind == token.Star:
			cls := p.next() // class name
			p.next()        // ::
			p.next()        // *
			mp := &ast.MemberPointerType{Class: cls.Text, Elem: base}
			setPos(mp, cls.Pos)
			base = mp
		default:
			return base
		}
	}
}

// setPos stamps a node's position via the exported constructor helper.
func setPos(n interface{}, pos source.Pos) {
	type positioned interface{ SetPos(source.Pos) }
	if pn, ok := n.(positioned); ok {
		pn.SetPos(pos)
	}
}
