package parser

import (
	"strings"
	"testing"

	"deadmembers/internal/ast"
	"deadmembers/internal/source"
)

func parse(t *testing.T, src string) (*ast.File, *source.DiagnosticList) {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.AddFile("t.mcc", src)
	diags := source.NewDiagnosticList(fset)
	return ParseFile(f, diags), diags
}

func parseOK(t *testing.T, src string) *ast.File {
	t.Helper()
	file, diags := parse(t, src)
	if diags.HasErrors() {
		t.Fatalf("unexpected parse errors:\n%v", diags)
	}
	return file
}

func firstClass(t *testing.T, file *ast.File) *ast.ClassDecl {
	t.Helper()
	for _, d := range file.Decls {
		if cd, ok := d.(*ast.ClassDecl); ok {
			return cd
		}
	}
	t.Fatal("no class declaration found")
	return nil
}

func TestClassDeclaration(t *testing.T) {
	file := parseOK(t, `
class C : public A, virtual private B {
public:
	int x;
	double y;
	char buf[16];
	int a, b, c;
protected:
	volatile int flags;
private:
	C(int v) : x(v), A(v) {}
	virtual ~C() {}
	virtual int f(int p) { return p; }
	virtual int g() = 0;
	void h();
};
`)
	cd := firstClass(t, file)
	if !cd.Defined || cd.Kind != ast.ClassClass {
		t.Fatalf("unexpected class header: %+v", cd)
	}
	if len(cd.Bases) != 2 || cd.Bases[0].Name != "A" || cd.Bases[0].Virtual ||
		cd.Bases[1].Name != "B" || !cd.Bases[1].Virtual {
		t.Fatalf("bases parsed wrong: %+v", cd.Bases)
	}
	if len(cd.Fields) != 7 {
		t.Fatalf("field count = %d, want 7 (x y buf a b c flags)", len(cd.Fields))
	}
	if _, ok := cd.Fields[2].Type.(*ast.ArrayType); !ok {
		t.Error("buf should have array type")
	}
	if !cd.Fields[6].Volatile {
		t.Error("flags should be volatile")
	}
	if len(cd.Methods) != 5 {
		t.Fatalf("method count = %d, want 5", len(cd.Methods))
	}
	var ctor, dtor, pure, proto *ast.MethodDecl
	for _, m := range cd.Methods {
		switch {
		case m.IsCtor:
			ctor = m
		case m.IsDtor:
			dtor = m
		case m.Pure:
			pure = m
		case m.Body == nil:
			proto = m
		}
	}
	if ctor == nil || len(ctor.Inits) != 2 {
		t.Fatal("constructor with init list not parsed")
	}
	if dtor == nil || !dtor.Virtual {
		t.Fatal("virtual destructor not parsed")
	}
	if pure == nil || !pure.Virtual {
		t.Fatal("pure virtual not parsed")
	}
	if proto == nil {
		t.Fatal("body-less declaration not parsed")
	}
}

func TestStructAndUnion(t *testing.T) {
	file := parseOK(t, `
struct S { int a; };
union U { int i; double d; };
`)
	var kinds []ast.ClassKind
	for _, d := range file.Decls {
		if cd, ok := d.(*ast.ClassDecl); ok {
			kinds = append(kinds, cd.Kind)
		}
	}
	if len(kinds) != 2 || kinds[0] != ast.ClassStruct || kinds[1] != ast.ClassUnion {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestDeclarationVsExpressionAmbiguity(t *testing.T) {
	// `Foo * p;` must be a declaration when Foo is a class, while
	// `a * b;` is a multiplication expression statement.
	file := parseOK(t, `
class Foo { public: int v; };
int main() {
	Foo* p;
	int a = 2;
	int b = 3;
	a * b;
	return 0;
}
`)
	var fn *ast.FuncDecl
	for _, d := range file.Decls {
		if f, ok := d.(*ast.FuncDecl); ok && f.Name == "main" {
			fn = f
		}
	}
	if fn == nil {
		t.Fatal("main not found")
	}
	if _, ok := fn.Body.Stmts[0].(*ast.DeclStmt); !ok {
		t.Errorf("Foo* p; parsed as %T, want DeclStmt", fn.Body.Stmts[0])
	}
	es, ok := fn.Body.Stmts[3].(*ast.ExprStmt)
	if !ok {
		t.Fatalf("a * b; parsed as %T, want ExprStmt", fn.Body.Stmts[3])
	}
	if _, ok := es.X.(*ast.Binary); !ok {
		t.Errorf("a * b; expression is %T, want Binary", es.X)
	}
}

func TestPrecedence(t *testing.T) {
	file := parseOK(t, `int main() { return 1 + 2 * 3 < 4 && 5 == 6 || 7 != 8; }`)
	fn := file.Decls[0].(*ast.FuncDecl)
	ret := fn.Body.Stmts[0].(*ast.ReturnStmt)
	// Top node must be ||.
	top, ok := ret.X.(*ast.Binary)
	if !ok || top.Op.String() != "||" {
		t.Fatalf("top operator = %v, want ||", ret.X)
	}
	left, ok := top.X.(*ast.Binary)
	if !ok || left.Op.String() != "&&" {
		t.Fatalf("left of || = %v, want &&", top.X)
	}
}

func TestMemberAccessForms(t *testing.T) {
	file := parseOK(t, `
class B { public: int m; };
class D : public B { public: int n; };
int main() {
	D d;
	D* p = &d;
	int x = d.n + p->n + d.B::m + p->B::m;
	int D::* pm = &D::n;
	return d.*pm + p->*pm + x;
}
`)
	qualCount, ptrDeref, qualIdent := 0, 0, 0
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Member:
			if x.Qual != "" {
				qualCount++
			}
		case *ast.MemberPtrDeref:
			ptrDeref++
		case *ast.QualifiedIdent:
			qualIdent++
		}
		return true
	})
	if qualCount != 2 {
		t.Errorf("qualified member accesses = %d, want 2", qualCount)
	}
	if ptrDeref != 2 {
		t.Errorf("member-pointer dereferences = %d, want 2", ptrDeref)
	}
	if qualIdent != 1 {
		t.Errorf("qualified identifiers (&D::n) = %d, want 1", qualIdent)
	}
}

func TestCastVsParen(t *testing.T) {
	file := parseOK(t, `
class T { public: int v; };
int main() {
	int a = 1;
	int b = (a) + 2;      // parenthesized expression
	T* p = (T*)0;         // cast
	double d = (double)a; // cast
	return b + (int)d + (p != 0 ? 1 : 0);
}
`)
	casts := 0
	ast.Inspect(file, func(n ast.Node) bool {
		if _, ok := n.(*ast.Cast); ok {
			casts++
		}
		return true
	})
	if casts != 3 {
		t.Errorf("cast count = %d, want 3", casts)
	}
}

func TestNewDeleteForms(t *testing.T) {
	file := parseOK(t, `
class C { public: int v; C(int a) { v = a; } };
int main() {
	C* a = new C(5);
	int* b = new int[10];
	int* c = new int(7);
	delete a;
	delete[] b;
	delete c;
	return 0;
}
`)
	news, arrNews, dels, arrDels := 0, 0, 0, 0
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.New:
			if x.Len != nil {
				arrNews++
			} else {
				news++
			}
		case *ast.Delete:
			if x.Array {
				arrDels++
			} else {
				dels++
			}
		}
		return true
	})
	if news != 2 || arrNews != 1 || dels != 2 || arrDels != 1 {
		t.Errorf("new/new[]/delete/delete[] = %d/%d/%d/%d, want 2/1/2/1", news, arrNews, dels, arrDels)
	}
}

func TestSizeofForms(t *testing.T) {
	file := parseOK(t, `
class C { public: int v; };
int main() {
	C c;
	return sizeof(C) + sizeof(c) + sizeof c.v;
}
`)
	typeForm, exprForm := 0, 0
	ast.Inspect(file, func(n ast.Node) bool {
		if s, ok := n.(*ast.Sizeof); ok {
			if s.Type != nil {
				typeForm++
			} else {
				exprForm++
			}
		}
		return true
	})
	if typeForm != 1 || exprForm != 2 {
		t.Errorf("sizeof(type)/sizeof(expr) = %d/%d, want 1/2", typeForm, exprForm)
	}
}

func TestControlFlowStatements(t *testing.T) {
	parseOK(t, `
int main() {
	for (int i = 0; i < 10; i++) { continue; }
	for (;;) { break; }
	while (1 < 2) { break; }
	do { } while (false);
	switch (3) {
	case 1: return 1;
	case 2:
	case 3: break;
	default: return 9;
	}
	if (true) { } else { }
	;
	return 0;
}
`)
}

func TestOutOfLineDefinitions(t *testing.T) {
	file := parseOK(t, `
class C {
public:
	int v;
	C();
	~C();
	int get();
};
C::C() : v(3) {}
C::~C() {}
int C::get() { return v; }
`)
	cd := firstClass(t, file)
	for _, m := range cd.Methods {
		if m.Body == nil {
			t.Errorf("method %s still has no body after out-of-line definitions", m.Name)
		}
	}
	// Out-of-line definitions do not produce extra top-level decls.
	if len(file.Decls) != 1 {
		t.Errorf("top-level decls = %d, want 1", len(file.Decls))
	}
}

func TestErrorRecovery(t *testing.T) {
	// Multiple independent errors must all be reported (recovery works).
	_, diags := parse(t, `
class A { public: int x }   // missing semicolon after member
int f( { return 1; }        // broken parameter list
int main() { return 0; }
`)
	if !diags.HasErrors() {
		t.Fatal("expected errors")
	}
	if diags.ErrorCount() < 2 {
		t.Errorf("error count = %d, want at least 2 (recovery should find both)", diags.ErrorCount())
	}
}

func TestParserNeverLoopsOnGarbage(t *testing.T) {
	inputs := []string{
		"%%%%", "class", "class ;;;", "int main() { (((((((", "} } }",
		"int main() { a..b; }", "class C : : {};", "new new new",
	}
	for _, src := range inputs {
		file, _ := parse(t, src) // must terminate
		if file == nil {
			t.Errorf("%q: nil file", src)
		}
	}
}

func TestForwardDeclaration(t *testing.T) {
	file := parseOK(t, `
class Later;
class Holder { public: Later* p; };
class Later { public: int v; };
`)
	count := 0
	for _, d := range file.Decls {
		if cd, ok := d.(*ast.ClassDecl); ok && cd.Name == "Later" {
			count++
			if count == 1 && cd.Defined {
				t.Error("forward declaration should not be Defined")
			}
		}
	}
	if count != 2 {
		t.Errorf("Later declared %d times, want 2", count)
	}
}

func TestGlobalVariables(t *testing.T) {
	file := parseOK(t, `
int counter = 0;
double rate = 2.5;
int table[4];
int main() { return counter; }
`)
	vars := 0
	for _, d := range file.Decls {
		if _, ok := d.(*ast.VarDecl); ok {
			vars++
		}
	}
	if vars != 3 {
		t.Errorf("global var count = %d, want 3", vars)
	}
}

func TestDiagnosticMentionsExpectation(t *testing.T) {
	_, diags := parse(t, `int main() { if true) {} return 0; }`)
	if !strings.Contains(diags.String(), "expected (") {
		t.Errorf("diagnostic should mention the expected token:\n%v", diags)
	}
}
