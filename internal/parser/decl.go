package parser

import (
	"deadmembers/internal/ast"
	"deadmembers/internal/token"
)

// parseFile parses the whole token stream into an ast.File.
func (p *Parser) parseFile() *ast.File {
	f := &ast.File{Name: p.file.Name()}
	setPos(f, p.file.Pos(0))
	for !p.at(token.EOF) {
		before := p.pos
		d := p.parseTopLevel(f)
		if d != nil {
			f.Decls = append(f.Decls, d)
		}
		if p.pos == before { // no progress: skip a token to guarantee termination
			p.next()
			p.panick = false
		}
	}
	return f
}

// parseTopLevel parses one top-level declaration. Out-of-line method
// definitions (`int C::f() {...}`, `C::C() {...}`, `C::~C() {...}`) are
// attached to the class declared earlier in the same file and nil is
// returned for them.
func (p *Parser) parseTopLevel(f *ast.File) ast.Decl {
	p.panick = false // each top-level declaration may report fresh errors
	switch p.kind() {
	case token.KwClass, token.KwStruct, token.KwUnion:
		return p.parseClass()
	case token.Semicolon:
		p.next()
		return nil
	}

	// Out-of-line constructor or destructor: C::C(... / C::~C(...
	if p.at(token.Ident) && p.peek(1).Kind == token.Scope &&
		(p.peek(2).Kind == token.Tilde || (p.peek(2).Kind == token.Ident && p.peek(2).Text == p.cur().Text)) {
		p.parseOutOfLineSpecial(f)
		return nil
	}

	if !p.startsType() {
		p.errorf("expected declaration, found %s", p.cur())
		p.sync()
		return nil
	}
	typ := p.parseType()

	// Out-of-line method: Type C::name(...) { ... }
	if p.at(token.Ident) && p.peek(1).Kind == token.Scope {
		p.parseOutOfLineMethod(f, typ)
		return nil
	}

	name := p.expect(token.Ident)
	if p.at(token.LParen) && p.parenStartsParams() {
		// Free function definition or declaration.
		fn := &ast.FuncDecl{Name: name.Text, Return: typ}
		setPos(fn, name.Pos)
		fn.Params = p.parseParams()
		if p.accept(token.Semicolon) {
			return fn // body-less prototype
		}
		fn.Body = p.parseBlock()
		return fn
	}
	// Global variable (possibly with constructor arguments).
	return p.finishVar(name.Text, typ)
}

// parenStartsParams disambiguates `T name(...)` at the top level: a
// parameter list starts with a type (or is empty), while constructor
// arguments of a global variable start with an expression — C++'s "most
// vexing parse", resolved the useful way.
func (p *Parser) parenStartsParams() bool {
	next := p.peek(1)
	switch next.Kind {
	case token.RParen, token.KwVoid, token.KwBool, token.KwChar, token.KwInt,
		token.KwDouble, token.KwConst, token.KwVolatile:
		return true
	case token.Ident:
		return p.types[next.Text]
	}
	return false
}

// finishVar parses the remainder of a variable declaration after the type
// and name: optional array suffix, optional initializer, terminating
// semicolon.
func (p *Parser) finishVar(name string, typ ast.TypeExpr) *ast.VarDecl {
	v := &ast.VarDecl{Name: name, Type: typ}
	setPos(v, p.cur().Pos)
	// Array suffixes: T x[3]; T x[3][4] is not supported (single dimension).
	if p.at(token.LBracket) {
		lb := p.next()
		length := p.parseExpr()
		p.expect(token.RBracket)
		at := &ast.ArrayType{Elem: v.Type, Len: length}
		setPos(at, lb.Pos)
		v.Type = at
	}
	switch {
	case p.accept(token.Assign):
		v.Init = p.parseAssignExpr()
	case p.at(token.LParen):
		p.next()
		v.HasCtor = true
		if !p.at(token.RParen) {
			v.CtorArgs = append(v.CtorArgs, p.parseAssignExpr())
			for p.accept(token.Comma) {
				v.CtorArgs = append(v.CtorArgs, p.parseAssignExpr())
			}
		}
		p.expect(token.RParen)
	}
	p.expect(token.Semicolon)
	return v
}

// parseParams parses `( T a, U* b, ... )`.
func (p *Parser) parseParams() []ast.Param {
	p.expect(token.LParen)
	var params []ast.Param
	if p.accept(token.RParen) {
		return params
	}
	// Accept C-style `(void)` empty parameter list.
	if p.at(token.KwVoid) && p.peek(1).Kind == token.RParen {
		p.next()
		p.next()
		return params
	}
	for {
		start := p.cur().Pos
		typ := p.parseType()
		var name string
		if p.at(token.Ident) {
			name = p.next().Text
		}
		if p.at(token.LBracket) { // array parameter decays to pointer
			lb := p.next()
			if !p.at(token.RBracket) {
				p.parseExpr() // size is parsed and ignored
			}
			p.expect(token.RBracket)
			pt := &ast.PointerType{Elem: typ}
			setPos(pt, lb.Pos)
			typ = pt
		}
		prm := ast.Param{Name: name, Type: typ}
		setPos(&prm, start)
		params = append(params, prm)
		if !p.accept(token.Comma) {
			break
		}
	}
	p.expect(token.RParen)
	return params
}

// parseClass parses a class/struct/union declaration (or forward
// declaration, which yields a body-less ClassDecl).
func (p *Parser) parseClass() ast.Decl {
	kw := p.next()
	var kind ast.ClassKind
	switch kw.Kind {
	case token.KwStruct:
		kind = ast.ClassStruct
	case token.KwUnion:
		kind = ast.ClassUnion
	default:
		kind = ast.ClassClass
	}
	name := p.expect(token.Ident)
	cd := &ast.ClassDecl{Kind: kind, Name: name.Text}
	setPos(cd, kw.Pos)

	if p.accept(token.Semicolon) {
		return cd // forward declaration
	}

	if p.accept(token.Colon) {
		for {
			start := p.cur().Pos
			virt := false
			for {
				if p.accept(token.KwVirtual) {
					virt = true
					continue
				}
				if p.at(token.KwPublic) || p.at(token.KwPrivate) || p.at(token.KwProtected) {
					p.next() // access specifiers parsed, not enforced
					continue
				}
				break
			}
			base := p.expect(token.Ident)
			bs := ast.BaseSpec{Virtual: virt, Name: base.Text}
			setPos(&bs, start)
			cd.Bases = append(cd.Bases, bs)
			if !p.accept(token.Comma) {
				break
			}
		}
	}

	p.expect(token.LBrace)
	cd.Defined = true
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		before := p.pos
		p.parseMember(cd)
		if p.pos == before {
			p.next()
			p.panick = false
		}
	}
	p.expect(token.RBrace)
	p.expect(token.Semicolon)
	return cd
}

// parseMember parses one member of a class body and appends it to cd.
func (p *Parser) parseMember(cd *ast.ClassDecl) {
	p.panick = false // each member may report fresh errors
	// Access specifier labels.
	if p.at(token.KwPublic) || p.at(token.KwPrivate) || p.at(token.KwProtected) {
		p.next()
		p.expect(token.Colon)
		return
	}
	if p.accept(token.Semicolon) {
		return
	}

	// Destructor: ~C() { ... }
	if p.at(token.Tilde) {
		tl := p.next()
		name := p.expect(token.Ident)
		if name.Text != cd.Name {
			p.errorf("destructor name ~%s does not match class %s", name.Text, cd.Name)
		}
		m := &ast.MethodDecl{Name: "~" + cd.Name, IsDtor: true}
		setPos(m, tl.Pos)
		m.Params = p.parseParams()
		p.finishMethodBody(m)
		cd.Methods = append(cd.Methods, m)
		return
	}

	virt := false
	for p.accept(token.KwVirtual) {
		virt = true
	}

	// Constructor: C(...) : inits { ... }
	if p.at(token.Ident) && p.cur().Text == cd.Name && p.peek(1).Kind == token.LParen {
		name := p.next()
		m := &ast.MethodDecl{Name: cd.Name, IsCtor: true, Virtual: virt}
		setPos(m, name.Pos)
		m.Params = p.parseParams()
		if p.accept(token.Colon) {
			m.Inits = p.parseCtorInits()
		}
		p.finishMethodBody(m)
		cd.Methods = append(cd.Methods, m)
		return
	}

	// virtual destructor: virtual ~C() {...}
	if virt && p.at(token.Tilde) {
		tl := p.next()
		name := p.expect(token.Ident)
		if name.Text != cd.Name {
			p.errorf("destructor name ~%s does not match class %s", name.Text, cd.Name)
		}
		m := &ast.MethodDecl{Name: "~" + cd.Name, IsDtor: true, Virtual: true}
		setPos(m, tl.Pos)
		m.Params = p.parseParams()
		p.finishMethodBody(m)
		cd.Methods = append(cd.Methods, m)
		return
	}

	// Field or method: starts with a type.
	isVolatileField := false
	start := p.cur().Pos
	if !p.startsType() {
		p.errorf("expected member declaration, found %s", p.cur())
		p.sync(token.RBrace)
		return
	}
	typ := p.parseType()
	if q, ok := typ.(*ast.QualType); ok && q.Volatile {
		isVolatileField = true
	}
	name := p.expect(token.Ident)

	if p.at(token.LParen) {
		m := &ast.MethodDecl{Name: name.Text, Virtual: virt, Return: typ}
		setPos(m, start)
		m.Params = p.parseParams()
		// Pure virtual: `= 0;`
		if p.at(token.Assign) && p.peek(1).Kind == token.IntLit && p.peek(1).Text == "0" {
			p.next()
			p.next()
			m.Pure = true
			p.expect(token.Semicolon)
		} else {
			p.finishMethodBody(m)
		}
		cd.Methods = append(cd.Methods, m)
		return
	}

	// Data member, possibly with array suffix; comma-separated declarators
	// share the base type.
	for {
		fieldType := typ
		if p.at(token.LBracket) {
			lb := p.next()
			length := p.parseExpr()
			p.expect(token.RBracket)
			at := &ast.ArrayType{Elem: fieldType, Len: length}
			setPos(at, lb.Pos)
			fieldType = at
		}
		fd := &ast.FieldDecl{Name: name.Text, Type: fieldType, Volatile: isVolatileField}
		setPos(fd, start)
		cd.Fields = append(cd.Fields, fd)
		if !p.accept(token.Comma) {
			break
		}
		name = p.expect(token.Ident)
	}
	p.expect(token.Semicolon)
	if virt {
		p.errorf("data member cannot be virtual")
	}
}

// finishMethodBody parses either a body or a terminating semicolon
// (declaration without body).
func (p *Parser) finishMethodBody(m *ast.MethodDecl) {
	if p.accept(token.Semicolon) {
		return
	}
	m.Body = p.parseBlock()
}

// parseCtorInits parses a constructor's member-initializer list.
func (p *Parser) parseCtorInits() []ast.CtorInit {
	var inits []ast.CtorInit
	for {
		name := p.expect(token.Ident)
		ci := ast.CtorInit{Name: name.Text}
		setPos(&ci, name.Pos)
		p.expect(token.LParen)
		if !p.at(token.RParen) {
			ci.Args = append(ci.Args, p.parseAssignExpr())
			for p.accept(token.Comma) {
				ci.Args = append(ci.Args, p.parseAssignExpr())
			}
		}
		p.expect(token.RParen)
		inits = append(inits, ci)
		if !p.accept(token.Comma) {
			return inits
		}
	}
}

// parseOutOfLineSpecial parses `C::C(...) {...}` and `C::~C() {...}` and
// attaches the definition to class C declared earlier in the file.
func (p *Parser) parseOutOfLineSpecial(f *ast.File) {
	cls := p.next() // class name
	p.next()        // ::
	isDtor := p.accept(token.Tilde)
	name := p.expect(token.Ident)
	if name.Text != cls.Text {
		p.errorf("qualified special member %s::%s has mismatched name", cls.Text, name.Text)
	}
	m := &ast.MethodDecl{Name: cls.Text, IsCtor: !isDtor, IsDtor: isDtor}
	if isDtor {
		m.Name = "~" + cls.Text
	}
	setPos(m, cls.Pos)
	m.Params = p.parseParams()
	if !isDtor && p.accept(token.Colon) {
		m.Inits = p.parseCtorInits()
	}
	p.finishMethodBody(m)
	p.attachToClass(f, cls.Text, m)
}

// parseOutOfLineMethod parses `Type C::name(...) {...}`.
func (p *Parser) parseOutOfLineMethod(f *ast.File, ret ast.TypeExpr) {
	cls := p.next() // class name
	p.next()        // ::
	name := p.expect(token.Ident)
	m := &ast.MethodDecl{Name: name.Text, Return: ret}
	setPos(m, cls.Pos)
	m.Params = p.parseParams()
	p.finishMethodBody(m)
	p.attachToClass(f, cls.Text, m)
}

// attachToClass merges an out-of-line definition into its class. If the
// class has an in-class declaration of the same member without a body, the
// definition fills it in (preserving `virtual`); otherwise it is appended.
func (p *Parser) attachToClass(f *ast.File, clsName string, m *ast.MethodDecl) {
	// Prefer the defining declaration over forward declarations.
	var target *ast.ClassDecl
	for _, d := range f.Decls {
		if cd, ok := d.(*ast.ClassDecl); ok && cd.Name == clsName {
			if target == nil || cd.Defined {
				target = cd
			}
			if cd.Defined {
				break
			}
		}
	}
	if cd := target; cd != nil {
		for _, existing := range cd.Methods {
			if existing.Name == m.Name && existing.Body == nil && !existing.Pure &&
				len(existing.Params) == len(m.Params) {
				existing.Body = m.Body
				existing.Inits = m.Inits
				// Parameter names may differ between declaration and
				// definition; the definition's names bind in the body.
				existing.Params = m.Params
				return
			}
		}
		cd.Methods = append(cd.Methods, m)
		return
	}
	p.diags.Errorf(m.Pos(), "out-of-line member of undeclared class %s", clsName)
}
