// Package types defines the semantic type representations and the typed
// program model for MC++.
//
// It is the shared vocabulary of the toolchain: the sema package constructs
// Class/Field/Func objects and attaches them to AST nodes through the Info
// side tables; the hierarchy, callgraph, deadmember, and interp packages
// consume them.
package types

import (
	"fmt"
	"strings"

	"deadmembers/internal/ast"
	"deadmembers/internal/source"
)

// Type is the interface implemented by all MC++ types.
type Type interface {
	String() string
	isType()
}

// BasicKind enumerates the builtin scalar types.
type BasicKind int

// Builtin scalar kinds.
const (
	Void BasicKind = iota
	Bool
	Char
	Int
	Double
)

// Basic is a builtin scalar type. Use the package-level singletons.
type Basic struct {
	Kind BasicKind
	name string
}

// Singleton basic types; pointer identity comparisons are valid.
var (
	VoidType   = &Basic{Void, "void"}
	BoolType   = &Basic{Bool, "bool"}
	CharType   = &Basic{Char, "char"}
	IntType    = &Basic{Int, "int"}
	DoubleType = &Basic{Double, "double"}
)

func (b *Basic) String() string { return b.name }
func (*Basic) isType()          {}

// IsArithmetic reports whether the basic type participates in arithmetic.
func (b *Basic) IsArithmetic() bool { return b.Kind != Void }

// Pointer is `Elem*`. The null pointer constant has type Pointer{VoidType}.
type Pointer struct {
	Elem Type
}

func (p *Pointer) String() string { return p.Elem.String() + "*" }
func (*Pointer) isType()          {}

// Array is a fixed-size array `Elem[Len]`.
type Array struct {
	Elem Type
	Len  int
}

func (a *Array) String() string { return fmt.Sprintf("%s[%d]", a.Elem, a.Len) }
func (*Array) isType()          {}

// MemberPointer is a pointer-to-data-member type `Elem Class::*`.
type MemberPointer struct {
	Class *Class
	Elem  Type
}

func (m *MemberPointer) String() string {
	return fmt.Sprintf("%s %s::*", m.Elem, m.Class.Name)
}
func (*MemberPointer) isType() {}

// ClassKind mirrors ast.ClassKind at the semantic level.
type ClassKind int

// Semantic class kinds.
const (
	ClassClass ClassKind = iota
	ClassStruct
	ClassUnion
)

// String returns the declaring keyword.
func (k ClassKind) String() string {
	switch k {
	case ClassStruct:
		return "struct"
	case ClassUnion:
		return "union"
	default:
		return "class"
	}
}

// Base is one base-class edge of a class.
type Base struct {
	Class   *Class
	Virtual bool
}

// Class is a class, struct, or union type.
type Class struct {
	Name    string
	Kind    ClassKind
	Bases   []Base
	Fields  []*Field
	Methods []*Func
	Pos     source.Pos

	// Library marks classes designated by the user as belonging to a
	// library whose full source is unavailable; the analysis treats their
	// members conservatively (Section 3.3 of the paper).
	Library bool

	// Complete is false for forward declarations never given a body.
	Complete bool

	// Decl is the defining AST node, if any.
	Decl *ast.ClassDecl
}

func (c *Class) String() string { return c.Name }
func (*Class) isType()          {}

// IsUnion reports whether the class was declared with `union`.
func (c *Class) IsUnion() bool { return c.Kind == ClassUnion }

// FieldByName returns the field declared directly in c (not in bases)
// with the given name, or nil.
func (c *Class) FieldByName(name string) *Field {
	for _, f := range c.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// MethodByName returns the method declared directly in c with the given
// name, or nil.
func (c *Class) MethodByName(name string) *Func {
	for _, m := range c.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Ctors returns the constructors declared in c.
func (c *Class) Ctors() []*Func {
	var out []*Func
	for _, m := range c.Methods {
		if m.IsCtor {
			out = append(out, m)
		}
	}
	return out
}

// CtorByArity returns the constructor of c taking n parameters, or nil.
// MC++ permits constructor overloading by parameter count only.
func (c *Class) CtorByArity(n int) *Func {
	for _, m := range c.Methods {
		if m.IsCtor && len(m.Params) == n {
			return m
		}
	}
	return nil
}

// Dtor returns the destructor of c, or nil.
func (c *Class) Dtor() *Func {
	for _, m := range c.Methods {
		if m.IsDtor {
			return m
		}
	}
	return nil
}

// HasVirtualMethods reports whether c declares any virtual method
// (directly; inherited virtuality is computed by the hierarchy package).
func (c *Class) HasVirtualMethods() bool {
	for _, m := range c.Methods {
		if m.Virtual {
			return true
		}
	}
	return false
}

// Field is a non-static data member.
type Field struct {
	Name     string
	Type     Type
	Volatile bool
	Owner    *Class
	Index    int // position within Owner.Fields
	Pos      source.Pos
	Decl     *ast.FieldDecl
}

// QualifiedName returns "Owner::Name".
func (f *Field) QualifiedName() string { return f.Owner.Name + "::" + f.Name }

// String returns the qualified name.
func (f *Field) String() string { return f.QualifiedName() }

// Var is a local variable, parameter, or global variable.
type Var struct {
	Name   string
	Type   Type
	Global bool
	Pos    source.Pos
	Decl   *ast.VarDecl // nil for parameters
}

func (v *Var) String() string { return v.Name }

// Func is a free function or a method.
type Func struct {
	Name    string
	Owner   *Class // nil for free functions
	Params  []*Var
	Return  Type // nil means void (and for ctors/dtors)
	Virtual bool
	Pure    bool
	IsCtor  bool
	IsDtor  bool
	Builtin bool // predeclared runtime function (print, malloc, ...)
	Pos     source.Pos
	Body    *ast.BlockStmt
	Inits   []ast.CtorInit // constructor member-initializer list
	Decl    ast.Node       // *ast.FuncDecl or *ast.MethodDecl
}

// QualifiedName returns "Class::name" for methods and "name" otherwise.
func (f *Func) QualifiedName() string {
	if f.Owner != nil {
		return f.Owner.Name + "::" + f.Name
	}
	return f.Name
}

// String returns the qualified name plus a parameter-count signature.
func (f *Func) String() string {
	var b strings.Builder
	b.WriteString(f.QualifiedName())
	b.WriteString("(")
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		if p.Type == nil {
			b.WriteString("?") // signature not yet resolved
		} else {
			b.WriteString(p.Type.String())
		}
	}
	b.WriteString(")")
	return b.String()
}

// Identical reports structural type equality. Classes compare by pointer
// identity (one Class object per declaration).
func Identical(a, b Type) bool {
	if a == b {
		return true
	}
	switch x := a.(type) {
	case *Basic:
		y, ok := b.(*Basic)
		return ok && x.Kind == y.Kind
	case *Pointer:
		y, ok := b.(*Pointer)
		return ok && Identical(x.Elem, y.Elem)
	case *Array:
		y, ok := b.(*Array)
		return ok && x.Len == y.Len && Identical(x.Elem, y.Elem)
	case *MemberPointer:
		y, ok := b.(*MemberPointer)
		return ok && x.Class == y.Class && Identical(x.Elem, y.Elem)
	}
	return false
}

// IsPointer reports whether t is a pointer type.
func IsPointer(t Type) bool {
	_, ok := t.(*Pointer)
	return ok
}

// IsClass returns the class if t is a class type, else nil.
func IsClass(t Type) *Class {
	c, _ := t.(*Class)
	return c
}

// PointeeClass returns the class C if t is C* (possibly through arrays of
// C), else nil.
func PointeeClass(t Type) *Class {
	if p, ok := t.(*Pointer); ok {
		return IsClass(p.Elem)
	}
	return nil
}

// Deref returns Elem for pointer and array types, else nil.
func Deref(t Type) Type {
	switch x := t.(type) {
	case *Pointer:
		return x.Elem
	case *Array:
		return x.Elem
	}
	return nil
}

// IsVoid reports whether t is void (or nil, which stands for void returns).
func IsVoid(t Type) bool {
	if t == nil {
		return true
	}
	b, ok := t.(*Basic)
	return ok && b.Kind == Void
}
