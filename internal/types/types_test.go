package types

import "testing"

func TestIdentical(t *testing.T) {
	c1 := &Class{Name: "C", Complete: true}
	c2 := &Class{Name: "C", Complete: true} // same name, different declaration
	cases := []struct {
		a, b Type
		want bool
	}{
		{IntType, IntType, true},
		{IntType, CharType, false},
		{&Pointer{Elem: IntType}, &Pointer{Elem: IntType}, true},
		{&Pointer{Elem: IntType}, &Pointer{Elem: CharType}, false},
		{&Array{Elem: IntType, Len: 3}, &Array{Elem: IntType, Len: 3}, true},
		{&Array{Elem: IntType, Len: 3}, &Array{Elem: IntType, Len: 4}, false},
		{c1, c1, true},
		{c1, c2, false}, // classes compare by identity
		{&MemberPointer{Class: c1, Elem: IntType}, &MemberPointer{Class: c1, Elem: IntType}, true},
		{&MemberPointer{Class: c1, Elem: IntType}, &MemberPointer{Class: c2, Elem: IntType}, false},
	}
	for _, tc := range cases {
		if got := Identical(tc.a, tc.b); got != tc.want {
			t.Errorf("Identical(%s, %s) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestTypePredicates(t *testing.T) {
	c := &Class{Name: "C"}
	if !IsPointer(&Pointer{Elem: c}) || IsPointer(c) {
		t.Error("IsPointer wrong")
	}
	if IsClass(c) != c || IsClass(IntType) != nil {
		t.Error("IsClass wrong")
	}
	if PointeeClass(&Pointer{Elem: c}) != c || PointeeClass(c) != nil {
		t.Error("PointeeClass wrong")
	}
	if Deref(&Pointer{Elem: IntType}) != IntType {
		t.Error("Deref pointer wrong")
	}
	if Deref(&Array{Elem: CharType, Len: 2}) != CharType {
		t.Error("Deref array wrong")
	}
	if Deref(IntType) != nil {
		t.Error("Deref scalar should be nil")
	}
	if !IsVoid(VoidType) || !IsVoid(nil) || IsVoid(IntType) {
		t.Error("IsVoid wrong")
	}
}

func TestTypeStrings(t *testing.T) {
	c := &Class{Name: "Widget"}
	cases := map[Type]string{
		IntType:                                 "int",
		&Pointer{Elem: c}:                       "Widget*",
		&Array{Elem: IntType, Len: 8}:           "int[8]",
		&MemberPointer{Class: c, Elem: IntType}: "int Widget::*",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%T renders %q, want %q", typ, got, want)
		}
	}
}

func TestClassAccessors(t *testing.T) {
	c := &Class{Name: "C", Complete: true}
	f := &Field{Name: "x", Type: IntType, Owner: c}
	c.Fields = append(c.Fields, f)
	ctor0 := &Func{Name: "C", Owner: c, IsCtor: true}
	ctor2 := &Func{Name: "C", Owner: c, IsCtor: true, Params: []*Var{{Type: IntType}, {Type: CharType}}}
	dtor := &Func{Name: "~C", Owner: c, IsDtor: true}
	m := &Func{Name: "go", Owner: c, Virtual: true}
	c.Methods = []*Func{ctor0, ctor2, dtor, m}

	if c.FieldByName("x") != f || c.FieldByName("y") != nil {
		t.Error("FieldByName wrong")
	}
	if c.MethodByName("go") != m {
		t.Error("MethodByName wrong")
	}
	if len(c.Ctors()) != 2 {
		t.Error("Ctors wrong")
	}
	if c.CtorByArity(0) != ctor0 || c.CtorByArity(2) != ctor2 || c.CtorByArity(1) != nil {
		t.Error("CtorByArity wrong")
	}
	if c.Dtor() != dtor {
		t.Error("Dtor wrong")
	}
	if !c.HasVirtualMethods() {
		t.Error("HasVirtualMethods wrong")
	}
	if f.QualifiedName() != "C::x" {
		t.Error("QualifiedName wrong")
	}
	if m.QualifiedName() != "C::go" {
		t.Error("method QualifiedName wrong")
	}
	if s := ctor2.String(); s != "C::C(int, char)" {
		t.Errorf("Func.String = %q", s)
	}
}

func TestClassKindString(t *testing.T) {
	if ClassClass.String() != "class" || ClassStruct.String() != "struct" || ClassUnion.String() != "union" {
		t.Error("class kind names wrong")
	}
}

func TestTotalDataMembers(t *testing.T) {
	a := &Class{Name: "A", Fields: []*Field{{}, {}}}
	b := &Class{Name: "B", Fields: []*Field{{}}}
	if got := TotalDataMembers([]*Class{a, b}); got != 3 {
		t.Errorf("TotalDataMembers = %d, want 3", got)
	}
}
