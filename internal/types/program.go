package types

import (
	"deadmembers/internal/ast"
	"deadmembers/internal/source"
)

// Program is a fully type-checked MC++ program: the class hierarchy, all
// functions, globals, and the side tables binding AST nodes to semantic
// objects.
type Program struct {
	FileSet *source.FileSet
	Files   []*ast.File

	Classes   []*Class // declaration order
	Functions []*Func  // free functions, declaration order (excluding builtins)
	Builtins  []*Func  // predeclared runtime functions
	Globals   []*Var   // global variables, declaration order

	ClassByName map[string]*Class
	FuncByName  map[string]*Func // free functions and builtins

	// Main is the program entry point (free function "main"), or nil.
	Main *Func

	Info *Info
}

// Info holds the AST-to-semantics side tables produced by type checking,
// in the style of go/types.Info.
type Info struct {
	// Types maps every expression to its type. Expressions of void type
	// (calls to void functions) map to VoidType.
	Types map[ast.Expr]Type

	// FieldRefs maps member-access expressions that denote data members
	// (after member lookup, including accesses inherited from base
	// classes) to the resolved field.
	FieldRefs map[*ast.Member]*Field

	// MethodRefs maps member-access expressions used as call callees to
	// the statically resolved method (the lookup result; dynamic dispatch
	// may select an override at run time).
	MethodRefs map[*ast.Member]*Func

	// QualFieldRefs maps `C::m` qualified-identifier expressions (used in
	// pointer-to-member constants `&C::m`) to the resolved field.
	QualFieldRefs map[*ast.QualifiedIdent]*Field

	// IdentVars maps identifier uses to the variable (local, parameter,
	// or global) they denote.
	IdentVars map[*ast.Ident]*Var

	// IdentFuncs maps identifier call callees to free functions/builtins.
	IdentFuncs map[*ast.Ident]*Func

	// IdentFields maps identifiers inside method bodies that resolve to
	// data members of the enclosing class (implicit `this->` accesses).
	IdentFields map[*ast.Ident]*Field

	// IdentMethods maps identifier call callees inside method bodies that
	// resolve to methods of the enclosing class (implicit `this->` calls).
	IdentMethods map[*ast.Ident]*Func

	// VarTypes maps every variable declaration (global and local) to its
	// resolved type.
	VarTypes map[*ast.VarDecl]Type

	// VarObjects maps variable declarations to their semantic object.
	VarObjects map[*ast.VarDecl]*Var

	// TypeExprs maps syntactic types to semantic types.
	TypeExprs map[ast.TypeExpr]Type

	// CtorInitFields resolves constructor-initializer entries naming data
	// members; CtorInitBases resolves entries naming base classes.
	CtorInitFields map[*ast.CtorInit]*Field
	CtorInitBases  map[*ast.CtorInit]*Class

	// NewCtors maps `new C(...)` expressions to the constructor they
	// invoke (nil when the class has no user-declared constructor).
	NewCtors map[*ast.New]*Func

	// VarCtors maps class-typed variable declarations to the constructor
	// used to initialize them (nil for default zero-init of ctor-less
	// classes).
	VarCtors map[*ast.VarDecl]*Func

	// UnsafeCasts records cast expressions classified as unsafe
	// (downcasts or pointer reinterpretation between unrelated types);
	// the value is the static class whose members the paper's algorithm
	// must conservatively mark fully live (the source type S of `(T)e`).
	UnsafeCasts map[*ast.Cast]*Class

	// EnclosingFunc maps each function body to its Func object, and
	// records for every Call expression the Func in which it occurs.
	CallSites map[*ast.Call]*Func
}

// NewInfo returns an Info with all maps allocated.
func NewInfo() *Info {
	return &Info{
		Types:          map[ast.Expr]Type{},
		FieldRefs:      map[*ast.Member]*Field{},
		MethodRefs:     map[*ast.Member]*Func{},
		QualFieldRefs:  map[*ast.QualifiedIdent]*Field{},
		IdentVars:      map[*ast.Ident]*Var{},
		IdentFuncs:     map[*ast.Ident]*Func{},
		IdentFields:    map[*ast.Ident]*Field{},
		IdentMethods:   map[*ast.Ident]*Func{},
		VarTypes:       map[*ast.VarDecl]Type{},
		VarObjects:     map[*ast.VarDecl]*Var{},
		TypeExprs:      map[ast.TypeExpr]Type{},
		CtorInitFields: map[*ast.CtorInit]*Field{},
		CtorInitBases:  map[*ast.CtorInit]*Class{},
		NewCtors:       map[*ast.New]*Func{},
		VarCtors:       map[*ast.VarDecl]*Func{},
		UnsafeCasts:    map[*ast.Cast]*Class{},
		CallSites:      map[*ast.Call]*Func{},
	}
}

// TypeOf returns the recorded type of e, or nil.
func (i *Info) TypeOf(e ast.Expr) Type { return i.Types[e] }

// AllFuncs returns every function with a body: free functions followed by
// all methods of all classes, in declaration order.
func (p *Program) AllFuncs() []*Func {
	var out []*Func
	out = append(out, p.Functions...)
	for _, c := range p.Classes {
		out = append(out, c.Methods...)
	}
	return out
}

// TotalDataMembers counts data members across the given classes.
func TotalDataMembers(classes []*Class) int {
	n := 0
	for _, c := range classes {
		n += len(c.Fields)
	}
	return n
}
