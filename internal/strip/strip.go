// Package strip implements the space optimization the paper motivates:
// it removes guaranteed-dead data members (and, optionally, unreachable
// functions) from an analyzed program and re-emits MC++ source.
//
// The transform preserves observable behaviour:
//
//   - a plain write `x.dead = e` keeps its side effects (`e;` remains);
//   - constructor-initializer entries for dead members are dropped, their
//     argument expressions hoisted into the constructor body;
//   - `delete`/`free` of a dead member is dropped (per the paper's
//     footnote, such calls cannot affect observable behaviour) — but only
//     for scalar memory, never when a class destructor would run;
//   - unreachable free functions and non-virtual methods are removed, so
//     that members read only from unreachable code become strippable.
//
// A dead member whose removal cannot be proven behaviour-preserving (for
// example, one written through an effectful receiver expression) is
// reported as kept rather than silently broken.
package strip

import (
	"sort"

	"deadmembers/internal/ast"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/frontend"
	"deadmembers/internal/printer"
	"deadmembers/internal/token"
	"deadmembers/internal/types"
)

// Options configures the transform.
type Options struct {
	// KeepUnreachable disables removal of unreachable functions. Members
	// that are read from unreachable code then stay in place (they cannot
	// be removed without breaking compilation).
	KeepUnreachable bool
}

// Result reports what was removed.
type Result struct {
	// Sources is the transformed program.
	Sources []frontend.Source

	// RemovedMembers lists the stripped members (qualified names).
	RemovedMembers []string

	// KeptMembers lists dead members that could not be stripped safely,
	// with the reason.
	KeptMembers map[string]string

	// RemovedFunctions lists removed unreachable functions.
	RemovedFunctions []string
}

// Apply runs the transform. The analysis result's ASTs are consumed
// (mutated); re-run the frontend on Result.Sources afterwards.
func Apply(res *deadmember.Result, opts Options) *Result {
	s := &stripper{
		res:  res,
		info: res.Program.Info,
		out:  &Result{KeptMembers: map[string]string{}},
	}
	s.planFunctionRemoval(opts)
	s.planMemberRemoval()
	s.rewrite()
	for _, file := range res.Program.Files {
		s.out.Sources = append(s.out.Sources, frontend.Source{
			Name: file.Name,
			Text: printer.Print(file),
		})
	}
	sort.Strings(s.out.RemovedMembers)
	sort.Strings(s.out.RemovedFunctions)
	return s.out
}

type stripper struct {
	res  *deadmember.Result
	info *types.Info
	out  *Result

	// removedFuncs is the set of functions whose declarations are dropped.
	removedFuncs map[*types.Func]bool

	// strippable is the final set of members to remove.
	strippable map[*types.Field]bool
}

// planFunctionRemoval selects unreachable free functions and non-virtual
// methods for removal. Virtual methods are kept: their declarations can
// participate in lookup for statically-typed call sites even when no
// dynamic path reaches them. Constructors, destructors, and main are
// always kept.
func (s *stripper) planFunctionRemoval(opts Options) {
	s.removedFuncs = map[*types.Func]bool{}
	if opts.KeepUnreachable {
		return
	}
	reach := s.res.CallGraph.Reachable
	for _, f := range s.res.Program.AllFuncs() {
		if reach[f] || f.Builtin || f.IsCtor || f.IsDtor || f.Virtual || f == s.res.Program.Main {
			continue
		}
		s.removedFuncs[f] = true
		s.out.RemovedFunctions = append(s.out.RemovedFunctions, f.QualifiedName())
	}
}

// planMemberRemoval decides which dead members can be removed safely: all
// surviving references to them must be rewritable (plain writes with
// effect-free receivers, droppable delete/free statements, or ctor-init
// entries).
func (s *stripper) planMemberRemoval() {
	s.strippable = map[*types.Field]bool{}
	for _, f := range s.res.DeadMembers() {
		s.strippable[f] = true
	}
	for _, fn := range s.res.Program.AllFuncs() {
		if fn.Body == nil || s.removedFuncs[fn] {
			continue
		}
		s.scanStmt(fn.Body)
		// Ctor-init entries are always rewritable; their argument
		// expressions are hoisted.
	}
	for f := range s.strippable {
		if s.strippable[f] {
			s.out.RemovedMembers = append(s.out.RemovedMembers, f.QualifiedName())
		}
	}
}

// block marks a dead member as non-strippable.
func (s *stripper) block(f *types.Field, why string) {
	if f == nil || !s.strippable[f] {
		return
	}
	s.strippable[f] = false
	s.out.KeptMembers[f.QualifiedName()] = why
}

// deadFieldOf returns the dead member denoted by e (any member access
// form, looking through parens and casts — `free((void*)buf)`), or nil.
func (s *stripper) deadFieldOf(e ast.Expr) *types.Field {
	for {
		if c, ok := ast.Unparen(e).(*ast.Cast); ok {
			e = c.X
			continue
		}
		break
	}
	var f *types.Field
	switch x := ast.Unparen(e).(type) {
	case *ast.Member:
		f = s.info.FieldRefs[x]
	case *ast.Ident:
		f = s.info.IdentFields[x]
	}
	if f != nil && s.res.IsDead(f) {
		return f
	}
	return nil
}

// receiverOf returns the receiver expression of a member access, or nil
// for implicit-this accesses.
func receiverOf(e ast.Expr) ast.Expr {
	if m, ok := ast.Unparen(e).(*ast.Member); ok {
		return m.X
	}
	return nil
}

// effectFree reports whether evaluating e has no side effects (no calls,
// allocation, assignment, or increment).
func effectFree(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Call, *ast.New, *ast.Delete, *ast.Assign:
			pure = false
			return false
		case *ast.Unary:
			if x.Op == token.Inc || x.Op == token.Dec {
				pure = false
				return false
			}
		case *ast.Postfix:
			pure = false
			return false
		}
		return true
	})
	return pure
}

// scanStmt validates all references to dead members inside surviving code,
// blocking members used in positions the rewrite cannot handle.
func (s *stripper) scanStmt(stmt ast.Stmt) {
	switch x := stmt.(type) {
	case *ast.BlockStmt:
		for _, st := range x.Stmts {
			s.scanStmt(st)
		}
	case *ast.ExprStmt:
		if s.scanDroppableExprStmt(x.X) {
			return
		}
		s.scanExpr(x.X)
	case *ast.DeclStmt:
		if x.Var.Init != nil {
			s.scanExpr(x.Var.Init)
		}
		for _, a := range x.Var.CtorArgs {
			s.scanExpr(a)
		}
	case *ast.IfStmt:
		s.scanExpr(x.Cond)
		s.scanStmt(x.Then)
		if x.Else != nil {
			s.scanStmt(x.Else)
		}
	case *ast.WhileStmt:
		s.scanExpr(x.Cond)
		s.scanStmt(x.Body)
	case *ast.DoWhileStmt:
		s.scanStmt(x.Body)
		s.scanExpr(x.Cond)
	case *ast.ForStmt:
		if x.Init != nil {
			s.scanStmt(x.Init)
		}
		if x.Cond != nil {
			s.scanExpr(x.Cond)
		}
		if x.Post != nil {
			s.scanExpr(x.Post)
		}
		s.scanStmt(x.Body)
	case *ast.SwitchStmt:
		s.scanExpr(x.X)
		for i := range x.Cases {
			for _, v := range x.Cases[i].Values {
				s.scanExpr(v)
			}
			for _, st := range x.Cases[i].Body {
				s.scanStmt(st)
			}
		}
	case *ast.ReturnStmt:
		if x.X != nil {
			s.scanExpr(x.X)
		}
	}
}

// scanDroppableExprStmt handles the statement forms the rewrite knows how
// to transform; returns true when fully handled.
func (s *stripper) scanDroppableExprStmt(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Assign:
		if x.Op != token.Assign {
			return false
		}
		f := s.deadFieldOf(x.LHS)
		if f == nil {
			return false
		}
		if recv := receiverOf(x.LHS); recv != nil && !effectFree(recv) {
			s.block(f, "written through an effectful receiver")
		}
		s.scanExpr(x.RHS) // RHS survives as an expression statement
		return true
	case *ast.Delete:
		f := s.deadFieldOf(x.X)
		if f == nil {
			return false
		}
		s.checkDeleteStrippable(f, x.X)
		return true
	case *ast.Call:
		if fn, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b := s.info.IdentFuncs[fn]; b != nil && b.Builtin && b.Name == "free" && len(x.Args) == 1 {
				if f := s.deadFieldOf(x.Args[0]); f != nil {
					s.checkDeleteStrippable(f, x.Args[0])
					return true
				}
			}
		}
		return false
	}
	return false
}

// checkDeleteStrippable blocks dead members whose delete would run a
// user destructor (dropping it could change observable behaviour).
func (s *stripper) checkDeleteStrippable(f *types.Field, arg ast.Expr) {
	if recv := receiverOf(arg); recv != nil && !effectFree(recv) {
		s.block(f, "freed through an effectful receiver")
		return
	}
	if pc := types.PointeeClass(f.Type); pc != nil && classHasDtors(pc) {
		s.block(f, "deleting it runs a user destructor")
	}
}

func classHasDtors(c *types.Class) bool {
	if c.Dtor() != nil {
		return true
	}
	for _, b := range c.Bases {
		if classHasDtors(b.Class) {
			return true
		}
	}
	for _, f := range c.Fields {
		t := f.Type
		for {
			if a, ok := t.(*types.Array); ok {
				t = a.Elem
				continue
			}
			break
		}
		if mc := types.IsClass(t); mc != nil && classHasDtors(mc) {
			return true
		}
	}
	return false
}

// scanExpr blocks any dead member referenced inside a surviving
// expression in a position the rewrite cannot remove.
func (s *stripper) scanExpr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Member:
			if f := s.info.FieldRefs[x]; f != nil && s.res.IsDead(f) {
				s.block(f, "referenced in an expression the transform cannot rewrite")
			}
		case *ast.Ident:
			if f := s.info.IdentFields[x]; f != nil && s.res.IsDead(f) {
				s.block(f, "referenced in an expression the transform cannot rewrite")
			}
		case *ast.QualifiedIdent:
			if f := s.info.QualFieldRefs[x]; f != nil && s.res.IsDead(f) {
				s.block(f, "pointer-to-member formed over it")
			}
		}
		return true
	})
}
