package strip

import (
	"deadmembers/internal/ast"
	"deadmembers/internal/token"
	"deadmembers/internal/types"
)

// rewrite mutates the ASTs: removes declarations and transforms the
// statements that referenced stripped members.
func (s *stripper) rewrite() {
	deadDecls := map[*ast.FieldDecl]bool{}
	for f, ok := range s.strippable {
		if ok && f.Decl != nil {
			deadDecls[f.Decl] = true
		}
	}
	removedMethodDecls := map[ast.Node]bool{}
	for fn := range s.removedFuncs {
		if fn.Decl != nil {
			removedMethodDecls[fn.Decl] = true
		}
	}

	for _, file := range s.res.Program.Files {
		kept := file.Decls[:0]
		for _, d := range file.Decls {
			switch x := d.(type) {
			case *ast.FuncDecl:
				if removedMethodDecls[ast.Node(x)] {
					continue
				}
			case *ast.ClassDecl:
				s.rewriteClass(x, deadDecls, removedMethodDecls)
			}
			kept = append(kept, d)
		}
		file.Decls = kept
	}

	// Rewrite all surviving function bodies.
	for _, fn := range s.res.Program.AllFuncs() {
		if fn.Body == nil || s.removedFuncs[fn] {
			continue
		}
		if fn.IsCtor {
			s.rewriteCtorInits(fn)
		}
		s.rewriteBlock(fn.Body)
	}
}

func (s *stripper) rewriteClass(cd *ast.ClassDecl, deadDecls map[*ast.FieldDecl]bool, removedMethods map[ast.Node]bool) {
	fields := cd.Fields[:0]
	for _, f := range cd.Fields {
		if !deadDecls[f] {
			fields = append(fields, f)
		}
	}
	cd.Fields = fields

	methods := cd.Methods[:0]
	for _, m := range cd.Methods {
		if !removedMethods[ast.Node(m)] {
			methods = append(methods, m)
		}
	}
	cd.Methods = methods
}

// rewriteCtorInits drops initializer entries targeting stripped members;
// effectful argument expressions are hoisted to the front of the body.
func (s *stripper) rewriteCtorInits(fn *types.Func) {
	md, ok := fn.Decl.(*ast.MethodDecl)
	if !ok {
		return
	}
	var hoisted []ast.Stmt
	kept := md.Inits[:0]
	for i := range md.Inits {
		init := &md.Inits[i]
		fld := s.info.CtorInitFields[init]
		if fld != nil && s.strippable[fld] {
			for _, a := range init.Args {
				if !effectFree(a) {
					es := &ast.ExprStmt{X: a}
					es.SetPos(a.Pos())
					hoisted = append(hoisted, es)
				}
			}
			continue
		}
		kept = append(kept, *init)
	}
	md.Inits = kept
	fn.Inits = kept
	if len(hoisted) > 0 && md.Body != nil {
		md.Body.Stmts = append(hoisted, md.Body.Stmts...)
	}
}

// rewriteBlock transforms statements in place.
func (s *stripper) rewriteBlock(b *ast.BlockStmt) {
	out := b.Stmts[:0]
	for _, st := range b.Stmts {
		if repl, drop := s.rewriteStmt(st); !drop {
			out = append(out, repl)
		}
	}
	b.Stmts = out
}

// rewriteStmt returns the replacement statement, or drop=true to delete it.
func (s *stripper) rewriteStmt(st ast.Stmt) (ast.Stmt, bool) {
	switch x := st.(type) {
	case *ast.BlockStmt:
		s.rewriteBlock(x)
		return x, false
	case *ast.ExprStmt:
		return s.rewriteExprStmt(x)
	case *ast.IfStmt:
		x.Then, _ = s.rewriteStmt(x.Then)
		if x.Else != nil {
			if repl, drop := s.rewriteStmt(x.Else); drop {
				x.Else = nil
			} else {
				x.Else = repl
			}
		}
		return x, false
	case *ast.WhileStmt:
		x.Body, _ = s.rewriteStmt(x.Body)
		return x, false
	case *ast.DoWhileStmt:
		x.Body, _ = s.rewriteStmt(x.Body)
		return x, false
	case *ast.ForStmt:
		if x.Init != nil {
			x.Init, _ = s.rewriteStmt(x.Init)
		}
		x.Body, _ = s.rewriteStmt(x.Body)
		return x, false
	case *ast.SwitchStmt:
		for i := range x.Cases {
			out := x.Cases[i].Body[:0]
			for _, st := range x.Cases[i].Body {
				if repl, drop := s.rewriteStmt(st); !drop {
					out = append(out, repl)
				}
			}
			x.Cases[i].Body = out
		}
		return x, false
	}
	return st, false
}

// rewriteExprStmt handles the expression-statement forms involving
// stripped members.
func (s *stripper) rewriteExprStmt(es *ast.ExprStmt) (ast.Stmt, bool) {
	switch x := ast.Unparen(es.X).(type) {
	case *ast.Assign:
		if x.Op == token.Assign {
			if f := s.deadFieldOf(x.LHS); f != nil && s.strippable[f] {
				// `x.dead = e;` -> `e;` (or nothing if e is pure).
				if effectFree(x.RHS) {
					return nil, true
				}
				es.X = x.RHS
				return es, false
			}
		}
	case *ast.Delete:
		if f := s.deadFieldOf(x.X); f != nil && s.strippable[f] {
			return nil, true
		}
	case *ast.Call:
		if fn, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b := s.info.IdentFuncs[fn]; b != nil && b.Builtin && b.Name == "free" && len(x.Args) == 1 {
				if f := s.deadFieldOf(x.Args[0]); f != nil && s.strippable[f] {
					return nil, true
				}
			}
		}
	}
	return es, false
}
