package strip

import (
	"fmt"
	"io"

	"deadmembers/internal/frontend"
)

// WriteSources emits transformed sources in the exact format cmd/deadstrip
// prints to stdout: file texts concatenated, preceded by a "// ---- name
// ----" banner when the program spans more than one file. The deadmemd
// /v1/strip endpoint shares this renderer so server responses stay
// byte-identical to the CLI.
func WriteSources(w io.Writer, sources []frontend.Source) error {
	for _, s := range sources {
		if len(sources) > 1 {
			if _, err := fmt.Fprintf(w, "// ---- %s ----\n", s.Name); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprint(w, s.Text); err != nil {
			return err
		}
	}
	return nil
}
