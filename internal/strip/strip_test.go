package strip_test

import (
	"strings"
	"testing"

	"deadmembers/internal/bench"
	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/dynprof"
	"deadmembers/internal/frontend"
	"deadmembers/internal/strip"
)

func analyze(t *testing.T, sources ...frontend.Source) *deadmember.Result {
	t.Helper()
	r := frontend.Compile(sources...)
	if err := r.Err(); err != nil {
		t.Fatalf("compile:\n%v", err)
	}
	return deadmember.Analyze(r.Program, r.Graph, deadmember.Options{CallGraph: callgraph.RTA})
}

func TestStripSimpleWriteOnly(t *testing.T) {
	src := `
class P {
public:
	int x;
	int cached;   // dead: write-only
	P(int a) : x(a), cached(a * a) {}
	int get() { return x; }
};
int main() {
	P p(6);
	p.cached = 99;
	return p.get() * 7;
}
`
	res := analyze(t, frontend.Source{Name: "t.mcc", Text: src})
	out := strip.Apply(res, strip.Options{})
	if len(out.RemovedMembers) != 1 || out.RemovedMembers[0] != "P::cached" {
		t.Fatalf("removed = %v, want [P::cached]", out.RemovedMembers)
	}
	if strings.Contains(out.Sources[0].Text, "cached") {
		t.Fatalf("stripped source still mentions cached:\n%s", out.Sources[0].Text)
	}

	// The stripped program compiles and behaves identically.
	r2 := frontend.Compile(out.Sources...)
	if err := r2.Err(); err != nil {
		t.Fatalf("stripped program does not compile:\n%v\n----\n%s", err, out.Sources[0].Text)
	}
	res2 := deadmember.Analyze(r2.Program, r2.Graph, deadmember.Options{CallGraph: callgraph.RTA})
	p1, err := dynprof.Run(res, dynprof.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := dynprof.Run(res2, dynprof.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Exec.ExitCode != p2.Exec.ExitCode || p1.Exec.Output != p2.Exec.Output {
		t.Fatal("behaviour changed by stripping")
	}
	if p2.Ledger.TotalBytes >= p1.Ledger.TotalBytes {
		t.Fatalf("object space did not shrink: %d -> %d", p1.Ledger.TotalBytes, p2.Ledger.TotalBytes)
	}
	if len(res2.DeadMembers()) != 0 {
		t.Fatalf("stripped program still has dead members: %v", res2.DeadMembers())
	}
}

func TestStripHoistsEffectfulInitArgs(t *testing.T) {
	src := `
int calls = 0;
int bump() { calls = calls + 1; return calls; }
class A {
public:
	int live;
	int dead;
	A() : live(1), dead(bump()) {}
};
int main() {
	A a;
	return a.live + calls; // calls must still be 1 after stripping
}
`
	res := analyze(t, frontend.Source{Name: "t.mcc", Text: src})
	out := strip.Apply(res, strip.Options{})
	if len(out.RemovedMembers) != 1 {
		t.Fatalf("removed = %v", out.RemovedMembers)
	}
	r2 := frontend.Compile(out.Sources...)
	if err := r2.Err(); err != nil {
		t.Fatalf("stripped program does not compile:\n%v\n----\n%s", err, out.Sources[0].Text)
	}
	e2, err := dynprof.Run(deadmember.Analyze(r2.Program, r2.Graph, deadmember.Options{CallGraph: callgraph.RTA}), dynprof.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e2.Exec.ExitCode != 2 { // live(1) + calls(1)
		t.Fatalf("exit = %d, want 2 (bump() side effect must be preserved)", e2.Exec.ExitCode)
	}
}

func TestStripKeepsEffectfulReceiverWrites(t *testing.T) {
	src := `
class Inner { public: int d; };
class Outer {
public:
	Inner in;
	Inner* pick() { return &in; }
};
int main() {
	Outer o;
	o.pick()->d = 5; // receiver has a call: cannot drop the store safely
	return 0;
}
`
	res := analyze(t, frontend.Source{Name: "t.mcc", Text: src})
	out := strip.Apply(res, strip.Options{})
	if len(out.RemovedMembers) != 0 {
		t.Fatalf("removed = %v, want none", out.RemovedMembers)
	}
	if why, ok := out.KeptMembers["Inner::d"]; !ok || !strings.Contains(why, "effectful receiver") {
		t.Fatalf("Inner::d should be kept with a receiver reason, got %v", out.KeptMembers)
	}
	// The emitted program must still compile (nothing was broken).
	if err := frontend.Compile(out.Sources...).Err(); err != nil {
		t.Fatalf("output does not compile:\n%v", err)
	}
}

func TestStripKeepsDeleteWithUserDtor(t *testing.T) {
	src := `
class Loud {
public:
	int v;
	~Loud() { print("bye"); }
};
class Holder {
public:
	Loud* pet;   // dead per the paper's delete rule...
	Holder() { pet = new Loud(); }
	~Holder() { delete pet; } // ...but deleting it runs an observable dtor
};
int main() {
	Holder h;
	return 0;
}
`
	res := analyze(t, frontend.Source{Name: "t.mcc", Text: src})
	// The analysis says pet is dead (its value never affects behaviour
	// beyond the delete); Loud::v is dead too (never read).
	deadNames := []string{}
	for _, f := range res.DeadMembers() {
		deadNames = append(deadNames, f.QualifiedName())
	}
	if strings.Join(deadNames, ",") != "Holder::pet,Loud::v" {
		t.Fatalf("analysis should report Holder::pet and Loud::v dead, got %v", deadNames)
	}
	// ...but the transform must refuse to drop the delete (dtor output).
	out := strip.Apply(res, strip.Options{})
	if strings.Join(out.RemovedMembers, ",") != "Loud::v" {
		t.Fatalf("removed = %v, want only Loud::v (pet kept: user dtor)", out.RemovedMembers)
	}
	if why := out.KeptMembers["Holder::pet"]; !strings.Contains(why, "destructor") {
		t.Fatalf("kept reason = %q", why)
	}
}

func TestStripUnreachableReaders(t *testing.T) {
	src := `
class Stats {
public:
	int hits;
	int debugSum;   // read only by dump(), which nothing calls
	Stats() : hits(0), debugSum(0) {}
	void record() { hits = hits + 1; debugSum = debugSum + 0; }
	int dump() { return debugSum; }
	int get() { return hits; }
};
int main() {
	Stats s;
	s.record();
	return s.get();
}
`
	res := analyze(t, frontend.Source{Name: "t.mcc", Text: src})

	// debugSum is read in record() via compound-style expression —
	// actually `debugSum + 0` reads it, so it is live. Use the analysis
	// to find what IS dead, then check strip consistency.
	out := strip.Apply(res, strip.Options{})
	r2 := frontend.Compile(out.Sources...)
	if err := r2.Err(); err != nil {
		t.Fatalf("stripped output does not compile:\n%v\n----\n%s", err, out.Sources[0].Text)
	}
	for _, fn := range out.RemovedFunctions {
		if strings.Contains(out.Sources[0].Text, fn+"(") && fn == "Stats::dump" {
			t.Fatalf("removed function %s still present", fn)
		}
	}
}

// TestStripCorpus applies the transform to every corpus benchmark and
// verifies: the stripped program compiles, behaves identically, allocates
// less object space (where dead members existed), and re-analysis finds
// no remaining dead members in used classes.
func TestStripCorpus(t *testing.T) {
	for _, bm := range bench.All() {
		t.Run(bm.Name, func(t *testing.T) {
			res := analyze(t, bm.Sources...)
			before, err := dynprof.Run(res, dynprof.Options{})
			if err != nil {
				t.Fatal(err)
			}
			deadBytes := before.Ledger.DeadBytes

			out := strip.Apply(res, strip.Options{})
			r2 := frontend.Compile(out.Sources...)
			if err := r2.Err(); err != nil {
				t.Fatalf("stripped %s does not compile:\n%v", bm.Name, err)
			}
			res2 := deadmember.Analyze(r2.Program, r2.Graph, deadmember.Options{CallGraph: callgraph.RTA})
			after, err := dynprof.Run(res2, dynprof.Options{})
			if err != nil {
				t.Fatalf("stripped %s does not run: %v", bm.Name, err)
			}

			if before.Exec.Output != after.Exec.Output || before.Exec.ExitCode != after.Exec.ExitCode {
				t.Fatalf("behaviour changed:\nbefore: %d %q\nafter:  %d %q",
					before.Exec.ExitCode, before.Exec.Output, after.Exec.ExitCode, after.Exec.Output)
			}
			if len(out.KeptMembers) != 0 {
				t.Errorf("kept members: %v (corpus dead members should all be strippable)", out.KeptMembers)
			}
			// Realized savings never exceed the dead-byte count: the
			// 8-byte object alignment can swallow a removed 4-byte int
			// (the paper likewise counts dead bytes, assuming exact-fit
			// allocation, rather than post-layout savings).
			saved := before.Ledger.TotalBytes - after.Ledger.TotalBytes
			if saved < 0 {
				t.Errorf("object space grew by %d bytes after stripping", -saved)
			}
			if saved > deadBytes {
				t.Errorf("saved %d bytes > dead bytes %d (accounting bug)", saved, deadBytes)
			}
			if deadBytes == 0 && saved != 0 {
				t.Errorf("benchmark without dead members changed size by %d", saved)
			}
			if remaining := res2.DeadMembers(); len(remaining) != 0 {
				t.Errorf("dead members remain after strip: %v", remaining)
			}
		})
	}
}
