package deadmembers_test

import (
	"strings"
	"testing"

	"deadmembers"
)

const apiExample = `
class Widget {
public:
	int shown;       // live
	int refreshes;   // dead: write-only counter
	Widget() : shown(0), refreshes(0) {}
	void draw() { shown = shown + 1; refreshes = refreshes + 0 * shown; }
	int visible() { return shown; }
};
int main() {
	Widget w;
	w.draw();
	w.draw();
	return w.visible();
}
`

func TestAnalyzeSourceDefaultsToRTA(t *testing.T) {
	res, err := deadmembers.AnalyzeSource("api.mcc", apiExample, deadmembers.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CallGraph.Mode.String() != "RTA" {
		t.Fatalf("default call graph = %s, want RTA", res.CallGraph.Mode)
	}
	// refreshes is read (compound-style) so actually live; shown is live.
	dead := res.DeadMembers()
	if len(dead) != 0 {
		t.Fatalf("unexpected dead members: %v", dead)
	}
}

func TestAnalyzeReportsCompileErrors(t *testing.T) {
	_, err := deadmembers.AnalyzeSource("bad.mcc", "int main() { return x; }", deadmembers.Options{})
	if err == nil || !strings.Contains(err.Error(), "undeclared identifier") {
		t.Fatalf("want compile error, got %v", err)
	}
}

func TestRunExecutes(t *testing.T) {
	res, err := deadmembers.Run(deadmembers.Source{Name: "run.mcc", Text: `
int main() { print("hi"); println(); return 7; }`})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 7 || res.Output != "hi\n" {
		t.Fatalf("exit=%d output=%q", res.ExitCode, res.Output)
	}
}

func TestProfileSourceEndToEnd(t *testing.T) {
	src := `
class Box {
public:
	int used;
	int wasted;     // dead
	Box() : used(1), wasted(2) {}
};
int main() {
	int acc = 0;
	for (int i = 0; i < 10; i++) {
		Box* b = new Box();
		acc = acc + b->used;
		delete b;
	}
	return acc;
}
`
	prof, err := deadmembers.ProfileSource("box.mcc", src, deadmembers.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Exec.ExitCode != 10 {
		t.Fatalf("exit = %d, want 10", prof.Exec.ExitCode)
	}
	l := prof.Ledger
	if l.TotalObjects != 10 {
		t.Fatalf("objects = %d, want 10", l.TotalObjects)
	}
	// Box is 8 bytes (two ints), half dead.
	if l.TotalBytes != 80 || l.DeadBytes != 40 {
		t.Fatalf("bytes = %d dead = %d, want 80/40", l.TotalBytes, l.DeadBytes)
	}
	if l.HighWater != 8 || l.AdjustedHighWater != 4 {
		t.Fatalf("hwm = %d adj = %d, want 8/4", l.HighWater, l.AdjustedHighWater)
	}
}

func TestMultiFilePrograms(t *testing.T) {
	lib := deadmembers.Source{Name: "lib.mcc", Text: `
class Counter {
public:
	int n;
	int spare;   // dead
	Counter() : n(0), spare(0) {}
	void bump() { n = n + 1; }
	int get() { return n; }
};
`}
	app := deadmembers.Source{Name: "app.mcc", Text: `
int main() {
	Counter c;
	c.bump();
	c.bump();
	return c.get();
}
`}
	res, err := deadmembers.Analyze(deadmembers.Options{}, lib, app)
	if err != nil {
		t.Fatal(err)
	}
	dead := res.DeadMembers()
	if len(dead) != 1 || dead[0].QualifiedName() != "Counter::spare" {
		t.Fatalf("dead = %v, want [Counter::spare]", dead)
	}
}

func TestStripAPI(t *testing.T) {
	src := deadmembers.Source{Name: "s.mcc", Text: `
class R {
public:
	int keep;
	int drop;   // dead
	R() : keep(1), drop(2) {}
};
int main() {
	R r;
	return r.keep;
}
`}
	out, err := deadmembers.Strip(deadmembers.Options{}, deadmembers.StripOptions{}, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.RemovedMembers) != 1 || out.RemovedMembers[0] != "R::drop" {
		t.Fatalf("removed = %v", out.RemovedMembers)
	}
	before, err := deadmembers.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	after, err := deadmembers.Run(out.Sources...)
	if err != nil {
		t.Fatal(err)
	}
	if before.ExitCode != after.ExitCode {
		t.Fatal("behaviour changed")
	}
	// Compile errors propagate.
	if _, err := deadmembers.Strip(deadmembers.Options{}, deadmembers.StripOptions{},
		deadmembers.Source{Name: "bad.mcc", Text: "int main() { return y; }"}); err == nil {
		t.Fatal("want compile error")
	}
}

func TestCallGraphModeMapping(t *testing.T) {
	src := `
class A { public: virtual int f() { return a; } int a; };
class B : public A { public: virtual int f() { return b; } int b; };
B* makeB() { return new B(); }   // never called: B is used but never
                                 // instantiated in reachable code
int main() { A x; A* p = &x; return p->f(); }
`
	// Under ALL and CHA, B::f is a dispatch target so B::b is live;
	// under RTA, B is not instantiated in reachable code so B::b is dead
	// — this distinguishes the mappings through the public API.
	counts := map[deadmembers.CallGraphMode]int{}
	for _, mode := range []deadmembers.CallGraphMode{
		deadmembers.CallGraphRTA, deadmembers.CallGraphCHA, deadmembers.CallGraphALL,
	} {
		res, err := deadmembers.AnalyzeSource("m.mcc", src, deadmembers.Options{CallGraph: mode})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.CallGraph.Mode.String(); got != [...]string{"RTA", "CHA", "ALL"}[mode] {
			t.Errorf("mode %d mapped to %s", mode, got)
		}
		counts[mode] = len(res.DeadMembers())
	}
	if counts[deadmembers.CallGraphRTA] <= counts[deadmembers.CallGraphCHA] {
		t.Errorf("RTA should find more dead members than CHA here: %v", counts)
	}
}

func TestOptionsPlumbing(t *testing.T) {
	src := `
class A { public: int x; };
class B : public A { public: int y; };
int main() {
	A* p = new B();
	B* q = (B*)p;
	return q->y;
}
`
	conservative, err := deadmembers.AnalyzeSource("t.mcc", src, deadmembers.Options{})
	if err != nil {
		t.Fatal(err)
	}
	trusting, err := deadmembers.AnalyzeSource("t.mcc", src, deadmembers.Options{TrustDowncasts: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(conservative.DeadMembers()) != 0 {
		t.Fatal("conservative downcast handling should keep A::x live")
	}
	if len(trusting.DeadMembers()) != 1 {
		t.Fatal("trusted downcasts should let A::x die")
	}
}

const reuseExample = `
class Box {
public:
	int used;
	int wasted;    // dead: written in the ctor, never read
	Box() : used(1), wasted(2) {}
};
int main() {
	Box* b = new Box();
	int v = b->used;
	delete b;
	return v;
}
`

// TestCompileReuse exercises the compile-once API: one Compilation serves
// several analyses under different options, a profile, and a run — with
// no recompilation in between.
func TestCompileReuse(t *testing.T) {
	comp, err := deadmembers.Compile(deadmembers.Source{Name: "reuse.mcc", Text: reuseExample})
	if err != nil {
		t.Fatal(err)
	}

	res := comp.Analyze(deadmembers.Options{})
	if dead := res.DeadMembers(); len(dead) != 1 || dead[0].QualifiedName() != "Box::wasted" {
		t.Fatalf("dead = %v, want [Box::wasted]", dead)
	}

	// Same compilation, different options: writes-as-uses revives the
	// write-only member.
	res2 := comp.Analyze(deadmembers.Options{WritesAreUses: true})
	if dead := res2.DeadMembers(); len(dead) != 0 {
		t.Fatalf("writes-as-uses left members dead: %v", dead)
	}

	prof, err := comp.Profile(deadmembers.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Exec.ExitCode != 1 || prof.Ledger.DeadBytes != 4 {
		t.Fatalf("profile exit=%d deadbytes=%d, want 1/4", prof.Exec.ExitCode, prof.Ledger.DeadBytes)
	}

	exec, err := comp.Run()
	if err != nil || exec.ExitCode != 1 {
		t.Fatalf("run: %v result=%+v", err, exec)
	}

	// Frontend work happened exactly once, and the stage timings cover it.
	tm := comp.Timings()
	if tm.Total() <= 0 {
		t.Fatalf("timings not recorded: %+v", tm)
	}
	if comp.Fingerprint() == "" {
		t.Fatal("empty fingerprint")
	}

	// Compile errors surface from Compile itself.
	if _, err := deadmembers.Compile(deadmembers.Source{Name: "bad.mcc", Text: "int main() { return z; }"}); err == nil {
		t.Fatal("want compile error")
	}
}

// TestWritesAreUsesOption checks the paper's §2 distinction end to end
// through the one-shot API: under the default read-based definition the
// write-only member is dead; treating writes as uses revives it.
func TestWritesAreUsesOption(t *testing.T) {
	res, err := deadmembers.AnalyzeSource("w.mcc", reuseExample, deadmembers.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeadMembers()) != 1 {
		t.Fatalf("default analysis should find Box::wasted dead, got %v", res.DeadMembers())
	}
	res, err = deadmembers.AnalyzeSource("w.mcc", reuseExample, deadmembers.Options{WritesAreUses: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeadMembers()) != 0 {
		t.Fatalf("WritesAreUses should leave nothing dead, got %v", res.DeadMembers())
	}
}

// TestCompileWithWorkers pins that explicit worker counts (sequential and
// saturated) agree through the public API.
func TestCompileWithWorkers(t *testing.T) {
	var lists [2]string
	for i, workers := range []int{1, 8} {
		comp, err := deadmembers.CompileWith(deadmembers.CompileConfig{Workers: workers},
			deadmembers.Source{Name: "reuse.mcc", Text: reuseExample})
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, f := range comp.Analyze(deadmembers.Options{}).DeadMembers() {
			names = append(names, f.QualifiedName())
		}
		lists[i] = strings.Join(names, ",")
	}
	if lists[0] != lists[1] {
		t.Fatalf("worker counts disagree: %q vs %q", lists[0], lists[1])
	}
}
