// Librarytrim: the paper's first motivating scenario — "when an
// application uses a class library, it typically uses only part of the
// library's functionality. Certain members may be accessed only from the
// unused parts."
//
// The program below links a small generic container library into an
// application that only ever appends and iterates. The library's reverse
// iteration, bounds bookkeeping, and freezing support are never called,
// so the members that only those features read are dead in this
// application — exactly what the analysis reports.
package main

import (
	"fmt"
	"log"

	"deadmembers"
)

const program = `
// ---- the collection library (fully available for analysis) ----

class Vec {
public:
	int  items[64];
	int  count;
	int  revCursor;   // used only by reverse iteration: dead here
	int  loBound;     // used only by checked access: dead here
	int  hiBound;     // used only by checked access: dead here
	bool frozen;      // used only by freeze(): dead here
	int  version;     // live: the iterator checks it

	Vec() : count(0), revCursor(0), loBound(0), hiBound(63), frozen(false), version(0) {}

	void append(int v) {
		items[count] = v;
		count = count + 1;
		version = version + 1;
	}

	// --- unused library functionality below ---
	int prevFromEnd() {
		revCursor = revCursor - 1;
		return items[revCursor];
	}
	int atChecked(int i) {
		if (i < loBound || i > hiBound) { abort(); }
		return items[i];
	}
	void freeze() {
		if (frozen) { abort(); }
		frozen = true;
	}
};

class VecIter {
public:
	Vec* vec;
	int  pos;
	int  expectVersion;
	VecIter(Vec* v) : vec(v), pos(0), expectVersion(v->version) {}
	bool hasNext() { return pos < vec->count; }
	int next() {
		if (expectVersion != vec->version) { abort(); }
		int v = vec->items[pos];
		pos = pos + 1;
		return v;
	}
};

// ---- the application: append + iterate only ----

int main() {
	Vec v;
	for (int i = 1; i <= 10; i++) { v.append(i * i); }
	int sum = 0;
	VecIter it(&v);
	while (it.hasNext()) { sum = sum + it.next(); }
	print("sum=");
	print(sum);
	println();
	return 0;
}
`

func main() {
	result, err := deadmembers.AnalyzeSource("librarytrim.mcc", program, deadmembers.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("dead members arising from unused library functionality:")
	for _, f := range result.DeadMembers() {
		fmt.Printf("  %s\n", f.QualifiedName())
	}
	s := result.Stats()
	fmt.Printf("=> %d of %d members (%.1f%%) — the paper found up to 27.3%% in\n",
		s.DeadMembers, s.Members, s.DeadPercent())
	fmt.Println("   library-based benchmarks (taldict, simulate, hotwire)")

	// How much object space would trimming save at run time?
	profile, err := deadmembers.ProfileSource("librarytrim.mcc", program, deadmembers.Options{})
	if err != nil {
		log.Fatal(err)
	}
	l := profile.Ledger
	fmt.Printf("\nprogram output: %s", profile.Exec.Output)
	fmt.Printf("object space %d bytes, %d dead (%.1f%%)\n", l.TotalBytes, l.DeadBytes, l.DeadPercent())
}
