// Figure 1: the example program from the paper, with the classification
// the algorithm produces for every data member (Section 3.1 of the paper
// walks through exactly this run).
package main

import (
	"fmt"
	"log"

	"deadmembers"
)

// program is Figure 1 of Sweeney & Tip (PLDI 1998), transliterated to
// MC++ (references replaced by pointers). The comments give the paper's
// semantic classification; note that the conservative algorithm marks
// B::mb1, C::mc1 (accessed from code that is dynamically unreachable but
// statically live under the call graph), and B::mb3 (read, but the read
// does not affect the result) as live — the paper discusses all three.
const program = `
class N {
public:
	int mn1; /* live: accessed and observable */
	int mn2; /* dead: not accessed */
};
class A {
public:
	virtual int f() { return ma1; }
	int ma1; /* live: accessed and observable */
	int ma2; /* dead: not accessed */
	int ma3; /* dead: accessed but not observable */
};
class B : public A {
public:
	virtual int f() { return mb1; }
	int mb1; /* dead: accessed from unreachable code */
	N   mb2; /* live: accessed and observable */
	int mb3; /* dead: accessed, but not observable */
	int mb4; /* live: accessed and observable */
};
class C : public A {
public:
	virtual int f() { return mc1; }
	int mc1; /* dead: accessed from unreachable code */
};
int foo(int* x) { return (*x) + 1; }
int main() {
	A a;
	B b;
	C c;
	A* ap;
	a.ma3 = b.mb3 + 1;
	int i = 10;
	if (i < 20) { ap = &a; } else { ap = &b; }
	return ap->f() + b.mb2.mn1 + foo(&b.mb4);
}
`

func main() {
	result, err := deadmembers.AnalyzeSource("figure1.mcc", program, deadmembers.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("classification of every data member (paper Section 3.1):")
	for _, cls := range result.Program.Classes {
		for _, f := range cls.Fields {
			mark := result.MarkOf(f)
			state := "DEAD"
			detail := ""
			if mark.Live {
				state = "live"
				detail = " (" + mark.Reason.String() + ")"
			}
			fmt.Printf("  %-8s %s%s\n", f.QualifiedName(), state, detail)
		}
	}

	s := result.Stats()
	fmt.Printf("\n%d of %d members dead (%.1f%%)\n", s.DeadMembers, s.Members, s.DeadPercent())
	fmt.Println("\nthe paper's algorithm finds dead: N::mn2, A::ma2, A::ma3;")
	fmt.Println("B::mb1/C::mc1/B::mb3 are conservatively live, as §3.1 explains.")

	// The program still runs — removing the dead members could not change
	// this output.
	exec, err := deadmembers.Run(deadmembers.Source{Name: "figure1.mcc", Text: program})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprogram exit code: %d\n", exec.ExitCode)
}
