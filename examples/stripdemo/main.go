// Stripdemo: applying the optimization the paper proposes. The program
// below is analyzed, its dead members are removed (with unreachable
// functions), the original and stripped versions are both executed to
// prove behaviour is preserved, and the object-space savings are measured.
package main

import (
	"fmt"
	"log"

	"deadmembers"
)

const program = `
class Particle {
public:
	double x;
	double y;
	double vx;
	double vy;
	double legacyMass;   // dead: the force model stopped using it
	int    debugId;      // dead: written, read only by dumpState()
	Particle(double ax, double ay) : x(ax), y(ay), vx(0.0), vy(0.0),
		legacyMass(1.0), debugId(0) {}
	void step() {
		vy = vy - 1.0;
		x = x + vx;
		y = y + vy;
		debugId = 7; // write-only in reachable code
	}
	int dumpState() { return debugId; }  // never called
	double height() { return y; }
};
int main() {
	double total = 0.0;
	for (int i = 0; i < 64; i++) {
		Particle* p = new Particle((double)i, 100.0);
		for (int s = 0; s < 10; s++) { p->step(); }
		total = total + p->height();
		delete p;
	}
	print("sum=");
	print(total);
	println();
	return 0;
}
`

func main() {
	src := deadmembers.Source{Name: "particles.mcc", Text: program}

	before, err := deadmembers.ProfileSource(src.Name, src.Text, deadmembers.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: %d bytes of object space, %d dead (%.1f%%)\n",
		before.Ledger.TotalBytes, before.Ledger.DeadBytes, before.Ledger.DeadPercent())

	out, err := deadmembers.Strip(deadmembers.Options{}, deadmembers.StripOptions{}, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("removed members:   %v\n", out.RemovedMembers)
	fmt.Printf("removed functions: %v\n", out.RemovedFunctions)

	after, err := deadmembers.ProfileProgram(deadmembers.Options{}, out.Sources...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after:  %d bytes of object space, %d dead (%.1f%%)\n",
		after.Ledger.TotalBytes, after.Ledger.DeadBytes, after.Ledger.DeadPercent())

	if before.Exec.Output == after.Exec.Output && before.Exec.ExitCode == after.Exec.ExitCode {
		fmt.Printf("verified: identical output %q, saved %d bytes (%.1f%%)\n",
			before.Exec.Output,
			before.Ledger.TotalBytes-after.Ledger.TotalBytes,
			100*float64(before.Ledger.TotalBytes-after.Ledger.TotalBytes)/float64(before.Ledger.TotalBytes))
	} else {
		log.Fatal("behaviour changed — this would be a bug")
	}
}
