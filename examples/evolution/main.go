// Evolution: the paper's third motivating scenario — "programmers may
// lose track of which members are used, due to the growing complexity of
// an application and its class hierarchy as the application changes over
// time."
//
// The employee-record application below has been through three
// "rewrites": caching fields from a removed optimization, a legacy
// payroll path that nothing calls anymore, and a debugging field that is
// only ever written. The example also shows how call-graph precision
// changes what the analysis can prove (the paper's Section 3.1
// discussion): the legacy path's members are dead under RTA/CHA but kept
// alive by the ALL baseline.
package main

import (
	"fmt"
	"log"

	"deadmembers"
)

const program = `
class Money {
public:
	int cents;
	Money(int c) : cents(c) {}
	int dollars() { return cents / 100; }
};

class Employee {
public:
	int   id;
	int   salaryCents;
	int   vacationDays;
	int   cachedTax;      // v1 optimization, invalidated each raise, never read since v2
	int   auditFlags;     // only written by the audit hook
	Money legacyBonus;    // read only by the v1 payroll path, which nothing calls
	int   perfScore;

	Employee(int i, int s) : id(i), salaryCents(s), vacationDays(25),
		cachedTax(0), auditFlags(0), legacyBonus(0), perfScore(50) {}

	void raise(int deltaCents) {
		salaryCents = salaryCents + deltaCents;
		cachedTax = 0;          // stale invalidation: write-only
		auditFlags = 1;         // set for an audit tool that was retired
	}

	int payV1() {               // legacy: no caller remains
		return salaryCents + legacyBonus.cents;
	}

	int pay() { return salaryCents; }
};

int main() {
	Employee* staff[8];
	for (int i = 0; i < 8; i++) { staff[i] = new Employee(i, 500000 + i * 10000); }
	staff[3]->raise(25000);
	int payroll = 0;
	for (int i = 0; i < 8; i++) {
		payroll = payroll + staff[i]->pay() + staff[i]->vacationDays + staff[i]->perfScore;
	}
	print("payroll=");
	print(payroll);
	println();
	for (int i = 0; i < 8; i++) { delete staff[i]; }
	return 0;
}
`

func main() {
	fmt.Println("dead members under each call-graph precision (paper §3.1):")
	for _, mode := range []struct {
		name string
		mode deadmembers.CallGraphMode
	}{
		{"ALL (every function reachable)", deadmembers.CallGraphALL},
		{"CHA (class hierarchy analysis)", deadmembers.CallGraphCHA},
		{"RTA (rapid type analysis, the paper's setting)", deadmembers.CallGraphRTA},
	} {
		result, err := deadmembers.AnalyzeSource("evolution.mcc", program,
			deadmembers.Options{CallGraph: mode.mode})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n", mode.name)
		for _, f := range result.DeadMembers() {
			fmt.Printf("  %s\n", f.QualifiedName())
		}
		s := result.Stats()
		fmt.Printf("  -> %d of %d (%.1f%%)\n", s.DeadMembers, s.Members, s.DeadPercent())
	}

	fmt.Println("\nauditFlags and cachedTax are written in raise() but never read:")
	fmt.Println("write-only members are the paper's key insight — initialization and")
	fmt.Println("maintenance writes must not imply liveness. (Even Employee::id turns")
	fmt.Println("out to be dead: nothing ever reads it back.)")
}
