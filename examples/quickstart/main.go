// Quickstart: analyze an MC++ program for dead data members and profile
// how much object space they occupy at run time.
package main

import (
	"fmt"
	"log"

	"deadmembers"
)

const program = `
class Point {
public:
	int x;
	int y;
	int cachedNorm;   // written in the constructor, never read: dead
	Point(int ax, int ay) : x(ax), y(ay), cachedNorm(ax*ax + ay*ay) {}
	int manhattan() { return x + y; }
};

int main() {
	int total = 0;
	for (int i = 0; i < 1000; i++) {
		Point* p = new Point(i, i + 1);
		total = total + p->manhattan();
		delete p;
	}
	print("total=");
	print(total);
	println();
	return 0;
}
`

func main() {
	// Static analysis: which members are guaranteed dead?
	result, err := deadmembers.AnalyzeSource("quickstart.mcc", program, deadmembers.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dead data members:")
	for _, f := range result.DeadMembers() {
		fmt.Printf("  %s (%s)\n", f.QualifiedName(), f.Type)
	}
	s := result.Stats()
	fmt.Printf("=> %d of %d members dead (%.1f%%)\n\n", s.DeadMembers, s.Members, s.DeadPercent())

	// Dynamic measurement: how many object bytes do they waste?
	profile, err := deadmembers.ProfileSource("quickstart.mcc", program, deadmembers.Options{})
	if err != nil {
		log.Fatal(err)
	}
	l := profile.Ledger
	fmt.Printf("program output:        %s", profile.Exec.Output)
	fmt.Printf("objects allocated:     %d\n", l.TotalObjects)
	fmt.Printf("object space:          %d bytes\n", l.TotalBytes)
	fmt.Printf("dead member space:     %d bytes (%.1f%% of object space)\n", l.DeadBytes, l.DeadPercent())
	fmt.Printf("high water mark:       %d -> %d bytes without dead members\n", l.HighWater, l.AdjustedHighWater)
}
