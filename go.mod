module deadmembers

go 1.22
