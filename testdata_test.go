package deadmembers_test

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"deadmembers"
)

// The testdata programs double as user-facing MC++ examples; each header
// comment states the expected analysis result and runtime behaviour, and
// this test holds them to it.

func readTestdata(t *testing.T, name string) deadmembers.Source {
	t.Helper()
	path := filepath.Join("testdata", name)
	text, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return deadmembers.Source{Name: name, Text: string(text)}
}

func TestTestdataPrograms(t *testing.T) {
	cases := []struct {
		file     string
		wantDead []string
		wantOut  string
	}{
		{
			file:     "shapes.mcc",
			wantDead: []string{"Canvas::undoDepth", "Circle::gradientSteps", "Shape::renderCache"},
			wantOut:  "total=838\n",
		},
		{
			file:     "wordhist.mcc",
			wantDead: []string{"HashMap::maxLoad", "HashMap::rehashes", "HashMap::tombstones"},
			wantOut:  "", // PRNG-derived; checked for shape below
		},
		{
			file:     "matrix.mcc",
			wantDead: nil,
			wantOut:  "trace=4 det-ish=10\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			src := readTestdata(t, tc.file)

			res, err := deadmembers.AnalyzeSource(src.Name, src.Text, deadmembers.Options{})
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			var dead []string
			for _, f := range res.DeadMembers() {
				dead = append(dead, f.QualifiedName())
			}
			sort.Strings(dead)
			if strings.Join(dead, ",") != strings.Join(tc.wantDead, ",") {
				t.Errorf("dead members = %v, want %v", dead, tc.wantDead)
			}

			exec, err := deadmembers.Run(src)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if exec.ExitCode != 0 {
				t.Errorf("exit = %d, want 0 (output %q)", exec.ExitCode, exec.Output)
			}
			if tc.wantOut != "" && exec.Output != tc.wantOut {
				t.Errorf("output = %q, want %q", exec.Output, tc.wantOut)
			}
			if tc.file == "wordhist.mcc" {
				if !strings.HasPrefix(exec.Output, "buckets=64 max=") || !strings.Contains(exec.Output, "total=200") {
					t.Errorf("wordhist output shape wrong: %q", exec.Output)
				}
			}

			// Each testdata program must also survive the strip transform
			// with identical behaviour.
			out, err := deadmembers.Strip(deadmembers.Options{}, deadmembers.StripOptions{}, src)
			if err != nil {
				t.Fatalf("strip: %v", err)
			}
			if len(out.RemovedMembers) != len(tc.wantDead) {
				t.Errorf("strip removed %v, want %d members", out.RemovedMembers, len(tc.wantDead))
			}
			after, err := deadmembers.Run(out.Sources...)
			if err != nil {
				t.Fatalf("stripped run: %v", err)
			}
			if after.Output != exec.Output || after.ExitCode != exec.ExitCode {
				t.Error("strip changed behaviour")
			}
		})
	}
}
