package deadmembers_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deadmembers"
	"deadmembers/internal/cfg"
	"deadmembers/internal/frontend"
)

// The fuzz targets hold the pipeline to its containment contract on
// arbitrary input: the frontend may reject a program with diagnostics,
// but it must never panic out of the API, never report a degraded
// compilation (a contained panic on plain source text is a bug, not
// containment working as intended), and anything Strip emits must
// recompile cleanly. Regressions caught by fuzzing are checked in under
// testdata/fuzz/<FuzzName>/ and replayed by plain `go test`.

func seedCorpus(f *testing.F) {
	f.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "*.mcc"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		text, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(text))
	}
	f.Add("int main() { return 0; }")
	f.Add("class C { public: int x; C() : x(1) {} }; int main() { C c; return c.x; }")
}

func fuzzCompile(t *testing.T, text string) (*deadmembers.Compilation, bool) {
	t.Helper()
	c, err := deadmembers.Compile(deadmembers.Source{Name: "fuzz.mcc", Text: text})
	if err != nil {
		return nil, false // rejected with diagnostics: fine
	}
	if c.Degraded() {
		t.Fatalf("compile degraded on plain source input: %v", c.Failures())
	}
	return c, true
}

func FuzzCompile(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, text string) {
		fuzzCompile(t, text)
	})
}

func FuzzAnalyze(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, text string) {
		c, ok := fuzzCompile(t, text)
		if !ok {
			return
		}
		for _, opts := range []deadmembers.Options{
			{},
			{CallGraph: deadmembers.CallGraphCHA, WritesAreUses: true},
			{CallGraph: deadmembers.CallGraphALL, TrustDowncasts: true, NoDeleteSpecialCase: true},
		} {
			res := c.Analyze(opts)
			if res.Degraded() {
				t.Fatalf("analysis degraded on plain source input: %v", res.Failures)
			}
			for _, m := range res.DeadMembers() {
				if !res.IsDead(m) {
					t.Fatalf("%s listed dead but IsDead is false", m.QualifiedName())
				}
			}
		}
	})
}

// FuzzCFG holds the flow-sensitive layer to its contract on arbitrary
// compiling input: every function's CFG satisfies the structural
// invariants, the lint pass terminates under the default solver budget
// without degrading, and a deliberately starved budget surfaces only
// orderly "budget" failures — never a hang or a panic.
func FuzzCFG(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, text string) {
		res := frontend.Compile(frontend.Source{Name: "fuzz.mcc", Text: text})
		if res.Err() != nil {
			return
		}
		for _, fn := range res.Program.AllFuncs() {
			g := cfg.Build(fn)
			if g == nil {
				continue
			}
			if err := g.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if g.Dump() == "" || g.DOT() == "" {
				t.Fatalf("%s: empty CFG rendering", fn.QualifiedName())
			}
		}

		c, ok := fuzzCompile(t, text)
		if !ok {
			return
		}
		lres := c.Lint(deadmembers.Options{}, deadmembers.LintOptions{})
		if lres.Degraded() {
			t.Fatalf("lint degraded on plain source input under the default budget: %v", lres.Failures)
		}
		// A starved budget must fail politely, function by function.
		lres = c.Lint(deadmembers.Options{}, deadmembers.LintOptions{Budget: 1})
		for _, fl := range lres.Failures {
			if fl.Stack != "budget" {
				t.Fatalf("non-budget failure under Budget=1: %+v", fl)
			}
		}
	})
}

func FuzzStripRoundTrip(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, text string) {
		if _, ok := fuzzCompile(t, text); !ok {
			return
		}
		// Strip consumes its compilation, so let it compile its own.
		out, err := deadmembers.Strip(deadmembers.Options{}, deadmembers.StripOptions{},
			deadmembers.Source{Name: "fuzz.mcc", Text: text})
		if err != nil {
			t.Fatalf("compiled program failed to strip: %v", err)
		}
		// The round-trip property: whatever the transform emits is a valid
		// MC++ program — it reparses and rechecks with zero diagnostics.
		if _, err := deadmembers.Compile(out.Sources...); err != nil {
			var b strings.Builder
			for _, s := range out.Sources {
				b.WriteString(s.Text)
			}
			t.Fatalf("stripped output does not recompile: %v\n---- stripped ----\n%s", err, b.String())
		}
	})
}

// FuzzVMDifferential is the engine equivalence fuzzer: every compiling
// input is executed under the tree-walking interpreter and the bytecode
// VM through the instrumented profiler, and the two runs must agree
// byte-for-byte — same output, exit code, step count, and heap
// high-water marks — or fail with the identical error. The input is
// compiled once; only the execution engine differs between the runs,
// so any divergence is the VM's fault by construction.
func FuzzVMDifferential(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, text string) {
		c, ok := fuzzCompile(t, text)
		if !ok {
			return
		}
		// A small step budget keeps looping inputs cheap under coverage
		// instrumentation; both engines count statements identically, so
		// the budget trips in lockstep.
		const budget = 20_000
		tree, terr := c.Profile(deadmembers.Options{MaxSteps: budget, Engine: deadmembers.EngineTree})
		vm, verr := c.Profile(deadmembers.Options{MaxSteps: budget, Engine: deadmembers.EngineVM})
		if (terr != nil) != (verr != nil) {
			t.Fatalf("engines disagree on failure: tree=%v vm=%v", terr, verr)
		}
		if terr != nil {
			if terr.Error() != verr.Error() {
				t.Fatalf("engines fail differently:\ntree: %v\nvm:   %v", terr, verr)
			}
			return
		}
		if tree.Exec.Output != vm.Exec.Output {
			t.Fatalf("output differs:\ntree: %q\nvm:   %q", tree.Exec.Output, vm.Exec.Output)
		}
		if tree.Exec.ExitCode != vm.Exec.ExitCode || tree.Exec.Steps != vm.Exec.Steps {
			t.Fatalf("exit/steps differ: tree(exit=%d steps=%d) vm(exit=%d steps=%d)",
				tree.Exec.ExitCode, tree.Exec.Steps, vm.Exec.ExitCode, vm.Exec.Steps)
		}
		if tree.Ledger.HighWater != vm.Ledger.HighWater ||
			tree.Ledger.AdjustedHighWater != vm.Ledger.AdjustedHighWater {
			t.Fatalf("heap HWM differs: tree(%d/%d) vm(%d/%d)",
				tree.Ledger.HighWater, tree.Ledger.AdjustedHighWater,
				vm.Ledger.HighWater, vm.Ledger.AdjustedHighWater)
		}
	})
}
