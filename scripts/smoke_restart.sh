#!/bin/sh
# smoke_restart.sh — warm-restart proof for the persistent artifact
# store: start deadmemd with -persist-dir, serve one analysis (compiled
# and persisted), SIGKILL the daemon, restart it over the same
# directory, and verify the same request is answered byte-identically
# from disk — persist-hit metric increments, zero frontend compiles.
set -eu

GO=${GO:-go}
BIN=${BIN:-bin}
ADDR=${ADDR:-127.0.0.1:8322}
FILE=${FILE:-examples/mcc/writeonly.mcc}

$GO build -o "$BIN/deadmem" ./cmd/deadmem
$GO build -o "$BIN/deadmemd" ./cmd/deadmemd

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

start_daemon() {
    "$BIN/deadmemd" -addr "$ADDR" -persist-dir "$tmp/persist" >>"$tmp/daemon.log" 2>&1 &
    pid=$!
    ok=""
    for _ in $(seq 1 100); do
        if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
            ok=1
            break
        fi
        sleep 0.1
    done
    if [ -z "$ok" ]; then
        echo "smoke-restart: daemon never became healthy" >&2
        cat "$tmp/daemon.log" >&2
        exit 1
    fi
}

# Ground truth: the CLI's stdout for the same input.
"$BIN/deadmem" "$FILE" >"$tmp/cli.analyze"

# First life: compile, serve, persist.
start_daemon
curl -fsS --data-binary "@$FILE" "http://$ADDR/v1/analyze?file=$FILE" >"$tmp/first.analyze"
diff -u "$tmp/cli.analyze" "$tmp/first.analyze"
curl -fsS "http://$ADDR/metrics" | grep -q '^deadmemd_persist_writes_total 1$' || {
    echo "smoke-restart: artifact was not persisted" >&2
    exit 1
}

# Crash: no drain, no fsync opportunity beyond what Put already did.
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

# Second life over the same directory: the record must be served from
# disk without recompiling anything.
start_daemon
curl -fsS --data-binary "@$FILE" "http://$ADDR/v1/analyze?file=$FILE" >"$tmp/second.analyze"
diff -u "$tmp/cli.analyze" "$tmp/second.analyze"

curl -fsS "http://$ADDR/metrics" >"$tmp/metrics"
grep -q '^deadmemd_persist_hits_total 1$' "$tmp/metrics"
grep -q '^deadmemd_cache_compiles_total 0$' "$tmp/metrics"
grep -q '^deadmemd_persist_served_corrupt_total 0$' "$tmp/metrics"

echo "smoke-restart: OK (artifact survived SIGKILL; served from disk, no recompile)"
