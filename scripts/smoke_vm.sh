#!/bin/sh
# smoke_vm.sh — end-to-end proof of the execution-engine contract: every
# example program runs under the tree-walking interpreter and the
# bytecode VM, plain and with -profile, and the outputs (stdout, stderr,
# exit code) must be byte-identical. A parallel profiled run checks the
# engines stay identical at -parallel too. Finally the paperbench
# -engines exhibit must render with no degraded (diverged) rows.
set -eu

GO=${GO:-go}
BIN=${BIN:-bin}

$GO build -o "$BIN/mccrun" ./cmd/mccrun
$GO build -o "$BIN/paperbench" ./cmd/paperbench

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

# run FILE OUT ENGINE [extra flags...]: capture stdout+stderr and the
# exit code (examples may legitimately exit nonzero; only a divergence
# between engines is a failure).
run() {
    file=$1; out=$2; eng=$3; shift 3
    code=0
    "$BIN/mccrun" -engine "$eng" "$@" "$file" >"$out" 2>"$out.err" || code=$?
    echo "exit=$code" >>"$out"
    cat "$out.err" >>"$out"
}

for f in examples/mcc/*.mcc; do
    name=$(basename "$f" .mcc)
    run "$f" "$tmp/$name.tree" tree
    run "$f" "$tmp/$name.vm" vm
    if ! cmp -s "$tmp/$name.tree" "$tmp/$name.vm"; then
        echo "smoke-vm: $name: plain run diverges between engines:" >&2
        diff "$tmp/$name.tree" "$tmp/$name.vm" >&2 || true
        exit 1
    fi
    run "$f" "$tmp/$name.ptree" tree -profile
    run "$f" "$tmp/$name.pvm" vm -profile
    if ! cmp -s "$tmp/$name.ptree" "$tmp/$name.pvm"; then
        echo "smoke-vm: $name: profiled run diverges between engines:" >&2
        diff "$tmp/$name.ptree" "$tmp/$name.pvm" >&2 || true
        exit 1
    fi
    run "$f" "$tmp/$name.pvm4" vm -profile -parallel 4
    if ! cmp -s "$tmp/$name.ptree" "$tmp/$name.pvm4"; then
        echo "smoke-vm: $name: -parallel 4 VM profile diverges:" >&2
        diff "$tmp/$name.ptree" "$tmp/$name.pvm4" >&2 || true
        exit 1
    fi
done

# The engines exhibit re-runs the paper corpus under both engines and
# degrades any row where they disagree; exit 1 would mean divergence.
"$BIN/paperbench" -engines >"$tmp/engines.out"
grep -q 'Engine comparison' "$tmp/engines.out"
grep -q '^total' "$tmp/engines.out"
if grep -q 'degraded' "$tmp/engines.out"; then
    echo "smoke-vm: degraded engine rows:" >&2
    cat "$tmp/engines.out" >&2
    exit 1
fi

n=$(ls examples/mcc/*.mcc | wc -l | tr -d ' ')
echo "smoke-vm: OK ($n example(s) byte-identical across engines, plain/profiled/parallel; engines exhibit clean)"
