#!/bin/sh
# smoke_precision.sh — end-to-end proof of the precision/cost frontier:
# runs paperbench with -timings at every liveness tier's exhibit, then
# lints the chained example at each tier and checks the tiers are
# monotone (paper <= flow <= heap) with heap strictly ahead of paper.
set -eu

GO=${GO:-go}
BIN=${BIN:-bin}
FILE=${FILE:-examples/mcc/chained.mcc}

$GO build -o "$BIN/paperbench" ./cmd/paperbench
$GO build -o "$BIN/deadlint" ./cmd/deadlint

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

# The precision exhibit sweeps all three tiers in one session; -timings
# shows the per-stage costs alongside. The corpus has degraded-free
# rows, so the frontier table must carry one line per benchmark plus a
# total.
"$BIN/paperbench" -precision -timings >"$tmp/bench.out"
grep -q 'Precision/cost frontier' "$tmp/bench.out"
for col in paper flow heap; do
    grep -q "$col" "$tmp/bench.out"
done
grep -q '^total' "$tmp/bench.out"

# Tier monotonicity on the chained example: finding counts must be
# non-decreasing, and heap must beat paper (the chained dead store).
np=$("$BIN/deadlint" -precision=paper "$FILE" | wc -l)
nf=$("$BIN/deadlint" -precision=flow "$FILE" | wc -l)
nh=$("$BIN/deadlint" -precision=heap "$FILE" | wc -l)
if [ "$np" -gt "$nf" ] || [ "$nf" -gt "$nh" ]; then
    echo "smoke-precision: tiers not monotone: paper=$np flow=$nf heap=$nh" >&2
    exit 1
fi
if [ "$nh" -le "$np" ]; then
    echo "smoke-precision: heap tier ($nh) should find strictly more than paper ($np) on $FILE" >&2
    exit 1
fi

echo "smoke-precision: OK (frontier table rendered; tiers monotone: paper=$np flow=$nf heap=$nh)"
