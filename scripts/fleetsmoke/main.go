// Command fleetsmoke drives a running deadmemd fleet through a
// /v1/batch scatter-gather and verifies the partial-result contract
// end to end — optionally SIGKILLing a worker process mid-stream:
//
//   - the stream must carry exactly one result per unit plus a summary
//     whose counts add up, kill or no kill;
//   - every successful body must be byte-identical to its ground-truth
//     file (the corresponding CLI's stdout);
//   - units that carried failure records must eventually succeed when
//     retried through the coordinator's plain endpoints, byte-identical
//     again — the fleet absorbs the death, it does not lose work.
//
// It is the verification half of scripts/smoke_fleet.sh and exits
// nonzero on any violated invariant.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"deadmembers/internal/api"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type unitSpec struct {
	id       string
	endpoint string
	want     string // ground-truth body
	req      *api.Request
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fleetsmoke", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		coordinator  = fs.String("coordinator", "http://127.0.0.1:8330", "coordinator base URL")
		files        = fs.String("files", "", "comma-separated source files to batch (required)")
		endpoints    = fs.String("endpoints", "analyze,lint,strip", "comma-separated endpoints to run per file")
		truthDir     = fs.String("truth-dir", "", "directory of ground-truth files named <base>.<endpoint> (required)")
		killPid      = fs.Int("kill-pid", 0, "worker PID to SIGKILL mid-batch (0 = no kill)")
		killAfter    = fs.Int("kill-after", 1, "number of streamed unit results to wait for before the kill")
		retryTimeout = fs.Duration("retry-timeout", 30*time.Second, "deadline for failed units to eventually succeed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *files == "" || *truthDir == "" {
		fmt.Fprintln(stderr, "fleetsmoke: -files and -truth-dir are required")
		return 2
	}

	var units []unitSpec
	var breq api.BatchRequest
	for _, f := range strings.Split(*files, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		text, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(stderr, "fleetsmoke: %v\n", err)
			return 1
		}
		base := strings.TrimSuffix(filepath.Base(f), filepath.Ext(f))
		for _, ep := range strings.Split(*endpoints, ",") {
			ep = strings.TrimSpace(ep)
			want, err := os.ReadFile(filepath.Join(*truthDir, base+"."+ep))
			if err != nil {
				fmt.Fprintf(stderr, "fleetsmoke: missing ground truth: %v\n", err)
				return 1
			}
			u := unitSpec{
				id:       base + "/" + ep,
				endpoint: ep,
				want:     string(want),
				// The source name is the path exactly as the CLI saw it,
				// so rendered findings are byte-identical to its stdout.
				req: &api.Request{Sources: []api.Source{{Name: f, Text: string(text)}}},
			}
			units = append(units, u)
			breq.Units = append(breq.Units, api.BatchUnit{ID: u.id, Endpoint: ep, Request: *u.req})
		}
	}
	if len(units) == 0 {
		fmt.Fprintln(stderr, "fleetsmoke: no units to run")
		return 2
	}
	byID := map[string]unitSpec{}
	for _, u := range units {
		byID[u.id] = u
	}

	payload, err := json.Marshal(breq)
	if err != nil {
		fmt.Fprintf(stderr, "fleetsmoke: %v\n", err)
		return 1
	}
	resp, err := http.Post(*coordinator+"/v1/batch", "application/json", bytes.NewReader(payload))
	if err != nil {
		fmt.Fprintf(stderr, "fleetsmoke: batch: %v\n", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		fmt.Fprintf(stderr, "fleetsmoke: batch status %d: %s\n", resp.StatusCode, body)
		return 1
	}

	// Stream the results, killing the victim worker once enough units
	// have landed that the death is unambiguously mid-batch.
	results := map[string]api.BatchUnitResult{}
	var summary *api.BatchSummary
	killed := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev api.BatchEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			fmt.Fprintf(stderr, "fleetsmoke: bad stream line %q: %v\n", sc.Text(), err)
			return 1
		}
		switch {
		case ev.Unit != nil:
			if _, dup := results[ev.Unit.ID]; dup {
				fmt.Fprintf(stderr, "fleetsmoke: unit %s reported twice\n", ev.Unit.ID)
				return 1
			}
			results[ev.Unit.ID] = *ev.Unit
			if *killPid != 0 && !killed && len(results) >= *killAfter {
				killed = true
				if err := syscall.Kill(*killPid, syscall.SIGKILL); err != nil {
					fmt.Fprintf(stderr, "fleetsmoke: kill %d: %v\n", *killPid, err)
					return 1
				}
				fmt.Fprintf(stdout, "fleetsmoke: SIGKILLed worker pid %d after %d results\n", *killPid, len(results))
			}
		case ev.Summary != nil:
			summary = ev.Summary
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(stderr, "fleetsmoke: reading stream: %v\n", err)
		return 1
	}
	if *killPid != 0 && !killed {
		fmt.Fprintln(stderr, "fleetsmoke: batch ended before the kill could land; nothing was proven")
		return 1
	}

	// No request lost, no silent outcomes.
	if summary == nil {
		fmt.Fprintln(stderr, "fleetsmoke: stream ended without a summary")
		return 1
	}
	if summary.Units != len(units) || len(results) != len(units) {
		fmt.Fprintf(stderr, "fleetsmoke: %d units sent, %d results, summary %+v\n", len(units), len(results), summary)
		return 1
	}
	if summary.OK+summary.Failed != summary.Units {
		fmt.Fprintf(stderr, "fleetsmoke: summary does not add up: %+v\n", summary)
		return 1
	}

	var failed []string
	for _, u := range units {
		r, ok := results[u.id]
		if !ok {
			fmt.Fprintf(stderr, "fleetsmoke: unit %s lost (no result)\n", u.id)
			return 1
		}
		if !r.OK {
			if r.Status == 0 || r.Error == "" {
				fmt.Fprintf(stderr, "fleetsmoke: unit %s failed without an explicit record: %+v\n", u.id, r)
				return 1
			}
			failed = append(failed, u.id)
			continue
		}
		if r.Body != u.want {
			fmt.Fprintf(stderr, "fleetsmoke: unit %s served bytes differ from CLI ground truth\n", u.id)
			return 1
		}
	}

	// Failed units must eventually succeed through the survivors.
	deadline := time.Now().Add(*retryTimeout)
	for _, id := range failed {
		u := byID[id]
		for {
			if time.Now().After(deadline) {
				fmt.Fprintf(stderr, "fleetsmoke: unit %s never succeeded within %v\n", id, *retryTimeout)
				return 1
			}
			body, ok := postOne(*coordinator, u.endpoint, u.req)
			if ok {
				if body != u.want {
					fmt.Fprintf(stderr, "fleetsmoke: unit %s retry served bytes differ from ground truth\n", id)
					return 1
				}
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	fmt.Fprintf(stdout, "fleetsmoke: OK (%d units; first pass ok=%d failed=%d; all failures recovered byte-identical)\n",
		summary.Units, summary.OK, summary.Failed)
	return 0
}

// postOne retries a single unit through the coordinator's plain /v1
// endpoint; a false return is data for the caller's retry loop.
func postOne(base, endpoint string, req *api.Request) (string, bool) {
	payload, err := json.Marshal(req)
	if err != nil {
		return "", false
	}
	resp, err := http.Post(base+"/v1/"+endpoint, "application/json", bytes.NewReader(payload))
	if err != nil {
		return "", false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return "", false
	}
	return string(body), true
}
