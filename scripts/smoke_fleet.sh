#!/bin/sh
# smoke_fleet.sh — fleet-mode proof for the coordinator: start three
# deadmemd workers and a coordinator in front of them, scatter-gather
# the example corpus through /v1/batch, SIGKILL one worker mid-batch,
# and verify (via scripts/fleetsmoke) that no unit is lost, every unit
# eventually succeeds byte-identical to the local CLIs' stdout, and the
# coordinator's ejection counter observed the death.
set -eu

GO=${GO:-go}
BIN=${BIN:-bin}
COORD_ADDR=${COORD_ADDR:-127.0.0.1:8330}
W1_ADDR=${W1_ADDR:-127.0.0.1:8331}
W2_ADDR=${W2_ADDR:-127.0.0.1:8332}
W3_ADDR=${W3_ADDR:-127.0.0.1:8333}

$GO build -o "$BIN/deadmem" ./cmd/deadmem
$GO build -o "$BIN/deadlint" ./cmd/deadlint
$GO build -o "$BIN/deadstrip" ./cmd/deadstrip
$GO build -o "$BIN/deadmemd" ./cmd/deadmemd
$GO build -o "$BIN/fleetsmoke" ./scripts/fleetsmoke

tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do
        kill "$p" 2>/dev/null || true
    done
    for p in $pids; do
        wait "$p" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

wait_healthy() {
    for _ in $(seq 1 100); do
        if curl -fsS "http://$1/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "smoke-fleet: $1 never became healthy" >&2
    cat "$tmp"/*.log >&2
    exit 1
}

# Three shared-nothing workers...
"$BIN/deadmemd" -addr "$W1_ADDR" >"$tmp/w1.log" 2>&1 &
w1=$!
"$BIN/deadmemd" -addr "$W2_ADDR" >"$tmp/w2.log" 2>&1 &
w2=$!
"$BIN/deadmemd" -addr "$W3_ADDR" >"$tmp/w3.log" 2>&1 &
w3=$!
pids="$w1 $w2 $w3"
wait_healthy "$W1_ADDR"
wait_healthy "$W2_ADDR"
wait_healthy "$W3_ADDR"

# ...and a coordinator routing across them. -batch-concurrency 1
# serializes the batch so the mid-batch kill provably lands mid-batch;
# a short health interval keeps the ejection observable quickly.
"$BIN/deadmemd" -coordinator \
    -workers "http://$W1_ADDR,http://$W2_ADDR,http://$W3_ADDR" \
    -addr "$COORD_ADDR" -health-interval 200ms -health-fails 2 \
    -batch-concurrency 1 >"$tmp/coord.log" 2>&1 &
coord=$!
pids="$pids $coord"
wait_healthy "$COORD_ADDR"

# Ground truth: the CLIs' stdout for every unit the batch will run.
mkdir -p "$tmp/truth"
files=""
for f in examples/mcc/*.mcc; do
    base=$(basename "$f" .mcc)
    "$BIN/deadmem" "$f" >"$tmp/truth/$base.analyze"
    "$BIN/deadlint" "$f" >"$tmp/truth/$base.lint"
    "$BIN/deadstrip" "$f" >"$tmp/truth/$base.strip" 2>/dev/null
    files="$files${files:+,}$f"
done

# Scatter-gather the corpus, killing worker 2 after the first streamed
# result; fleetsmoke verifies the partial-result and byte-identity
# invariants and retries the stranded units through the survivors.
"$BIN/fleetsmoke" -coordinator "http://$COORD_ADDR" \
    -files "$files" -truth-dir "$tmp/truth" \
    -kill-pid "$w2" -kill-after 1

# The coordinator must have noticed: the dead worker ejected from
# routing, and the fleet still ready on the survivors.
ok=""
for _ in $(seq 1 50); do
    if curl -fsS "http://$COORD_ADDR/metrics" >"$tmp/metrics" 2>/dev/null &&
        awk '$1 == "deadmemd_fleet_ejections_total" && $2 >= 1 { found = 1 } END { exit !found }' "$tmp/metrics" 2>/dev/null; then
        ok=1
        break
    fi
    sleep 0.2
done
if [ -z "$ok" ]; then
    echo "smoke-fleet: coordinator never ejected the killed worker" >&2
    cat "$tmp/metrics" >&2
    exit 1
fi
curl -fsS "http://$COORD_ADDR/readyz" >/dev/null

echo "smoke-fleet: OK (batch survived a mid-batch SIGKILL; no unit lost, all byte-identical, ejection observed)"
