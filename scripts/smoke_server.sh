#!/bin/sh
# smoke_server.sh — end-to-end proof that deadmemd is a drop-in transport
# over the batch pipeline: it starts the daemon, waits for /healthz, and
# diffs /v1/analyze and /v1/lint responses byte-for-byte against the
# stdout of deadmem and deadlint -format json on the same sources.
set -eu

GO=${GO:-go}
BIN=${BIN:-bin}
ADDR=${ADDR:-127.0.0.1:8321}
FILE=${FILE:-examples/mcc/writeonly.mcc}

$GO build -o "$BIN/deadmem" ./cmd/deadmem
$GO build -o "$BIN/deadlint" ./cmd/deadlint
$GO build -o "$BIN/deadmemd" ./cmd/deadmemd

tmp=$(mktemp -d)
"$BIN/deadmemd" -addr "$ADDR" >"$tmp/daemon.log" 2>&1 &
pid=$!
cleanup() {
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

ok=""
for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
        ok=1
        break
    fi
    sleep 0.1
done
if [ -z "$ok" ]; then
    echo "smoke-server: daemon never became healthy" >&2
    cat "$tmp/daemon.log" >&2
    exit 1
fi

# /v1/analyze must be byte-identical to deadmem's stdout.
"$BIN/deadmem" "$FILE" >"$tmp/cli.analyze"
curl -fsS --data-binary "@$FILE" "http://$ADDR/v1/analyze?file=$FILE" >"$tmp/srv.analyze"
diff -u "$tmp/cli.analyze" "$tmp/srv.analyze"

# /v1/lint must be byte-identical to deadlint -format json's stdout.
"$BIN/deadlint" -format json "$FILE" >"$tmp/cli.lint"
curl -fsS --data-binary "@$FILE" "http://$ADDR/v1/lint?file=$FILE&format=json" >"$tmp/srv.lint"
diff -u "$tmp/cli.lint" "$tmp/srv.lint"

# A repeat request must be a cache hit, and the metrics must say so.
curl -fsS --data-binary "@$FILE" "http://$ADDR/v1/analyze?file=$FILE" >/dev/null
curl -fsS "http://$ADDR/metrics" >"$tmp/metrics"
grep -q '^deadmemd_cache_compiles_total 1$' "$tmp/metrics"
grep -q '^deadmemd_cache_hits_total 2$' "$tmp/metrics"
grep -q 'deadmemd_requests_total{endpoint="/v1/analyze",code="200"} 2' "$tmp/metrics"

echo "smoke-server: OK (analyze + lint byte-identical to CLIs, cache hits observed)"
