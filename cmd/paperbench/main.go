// Command paperbench regenerates every table and figure of the paper's
// evaluation over the built-in benchmark corpus.
//
// Usage:
//
//	paperbench                 # all exhibits
//	paperbench -table1         # just Table 1
//	paperbench -figure3 -figure4
//	paperbench -ablation       # the design-choice ablations
//	paperbench -precision      # precision/cost frontier across liveness tiers
//	paperbench -timings        # per-stage engine wall-clock timings
//	paperbench -engines        # tree vs VM steps/sec comparison
//	paperbench -engines -large # ... over the 10-50x large corpus
//	paperbench -engine vm      # collect the exhibits through the VM
//	paperbench -parallel 8     # bound the engine's worker pool
//	paperbench -csv            # machine-readable results
//	paperbench -dump richards  # print a corpus benchmark's MC++ source
//
// All exhibits share one engine session: each corpus benchmark is
// compiled exactly once, no matter how many tables, figures, and ablation
// variants are produced from it.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"deadmembers/internal/bench"
	"deadmembers/internal/buildinfo"
	"deadmembers/internal/engine"
	"deadmembers/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "paperbench: internal error: %v\n", r)
			code = 1
		}
	}()
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		timeout     = fs.Duration("timeout", 0, "abort the whole evaluation after this duration (e.g. 2m; 0 = no limit)")
		table1      = fs.Bool("table1", false, "benchmark characteristics (paper Table 1)")
		figure3     = fs.Bool("figure3", false, "static dead-member percentages (paper Figure 3)")
		table2      = fs.Bool("table2", false, "dynamic byte counts (paper Table 2)")
		figure4     = fs.Bool("figure4", false, "dynamic percentages (paper Figure 4)")
		summary     = fs.Bool("summary", false, "headline numbers vs the paper's abstract")
		ablation    = fs.Bool("ablation", false, "analysis-variant ablations")
		precision   = fs.Bool("precision", false, "precision/cost frontier: lint findings and wall clock per liveness tier (paper/flow/heap)")
		timings     = fs.Bool("timings", false, "per-stage engine wall-clock timings and session cache counters")
		engines     = fs.Bool("engines", false, "execution-engine comparison: steps/sec and wall-clock speedup of the bytecode VM over the tree-walker")
		large       = fs.Bool("large", false, "with -engines: measure the 10-50x large corpus instead of the paper corpus")
		jsonOut     = fs.Bool("json", false, "with -engines: emit the comparison rows as JSON (the BENCH_vm.json snapshot format)")
		engineFlag  = fs.String("engine", "tree", "execution engine for the profiled exhibits: tree or vm (results are byte-identical; vm exists for soak coverage)")
		csvOut      = fs.Bool("csv", false, "machine-readable measured results")
		parallel    = fs.Int("parallel", 0, "worker count for the parse and liveness stages (0 = all cores, 1 = sequential)")
		dump        = fs.String("dump", "", "print the MC++ source of the named corpus benchmark and exit")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	eng, err := engine.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintf(stderr, "paperbench: %v\n", err)
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, buildinfo.Line("paperbench"))
		return 0
	}

	if *dump != "" {
		b, err := bench.ByName(*dump)
		if err != nil {
			fmt.Fprintf(stderr, "paperbench: %v (have: %v)\n", err, bench.Names())
			return 2
		}
		for _, s := range b.Sources {
			fmt.Fprintf(stdout, "// ---- %s ----\n%s", s.Name, s.Text)
		}
		return 0
	}

	all := !*table1 && !*figure3 && !*table2 && !*figure4 && !*summary && !*ablation && !*precision && !*timings && !*csvOut && !*engines

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	session := engine.NewSession(engine.Config{Workers: *parallel})

	// -engines is a pure throughput exhibit: it runs the corpus under
	// both engines, wall-clock timed, and skips the profiled exhibits
	// entirely (its rows already prove byte-identity per run).
	if *engines {
		corpus := bench.All()
		if *large {
			corpus = bench.Large()
		}
		rows, err := report.CollectEnginesInContext(ctx, session, corpus)
		if err != nil {
			fmt.Fprintf(stderr, "paperbench: %v\n", err)
			return 1
		}
		if *jsonOut {
			out, err := report.EnginesJSON(rows)
			if err != nil {
				fmt.Fprintf(stderr, "paperbench: %v\n", err)
				return 1
			}
			fmt.Fprint(stdout, out)
		} else {
			fmt.Fprintln(stdout, report.EnginesTable(rows))
		}
		for _, r := range rows {
			if r.Degraded {
				fmt.Fprintln(stderr, "paperbench: some engine rows are degraded")
				return 1
			}
		}
		return 0
	}

	results, err := report.CollectAllInContextEngine(ctx, session, eng)
	if err != nil {
		fmt.Fprintf(stderr, "paperbench: %v\n", err)
		return 1
	}

	if all || *table1 {
		fmt.Fprintln(stdout, report.Table1(results))
	}
	if all || *figure3 {
		fmt.Fprintln(stdout, report.Figure3(results))
	}
	if all || *table2 {
		fmt.Fprintln(stdout, report.Table2(results))
	}
	if all || *figure4 {
		fmt.Fprintln(stdout, report.Figure4(results))
	}
	if all || *summary {
		fmt.Fprintln(stdout, report.Summary(results))
	}
	if *csvOut {
		fmt.Fprint(stdout, report.CSV(results))
	}
	if all || *ablation {
		rows, err := report.RunAblationsIn(session)
		if err != nil {
			fmt.Fprintf(stderr, "paperbench: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, report.AblationTable(rows))
	}
	// Like -timings, the frontier carries wall-clock columns, so it is
	// opt-in only: the default exhibit set stays byte-identical across
	// runs and worker counts.
	if *precision {
		fmt.Fprintln(stdout, report.PrecisionTable(results))
	}
	if *timings {
		fmt.Fprintln(stdout, report.TimingsTable(results, session.Stats()))
	}
	if report.AnyDegraded(results) {
		fmt.Fprint(stderr, report.DegradedNote(results))
		fmt.Fprintln(stderr, "paperbench: some benchmarks are degraded; their rows are marked and excluded from summary statistics")
		return 1
	}
	return 0
}
