package main

import (
	"strings"
	"testing"
	"time"
)

func TestDumpBenchmark(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-dump", "richards"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "class Scheduler") {
		t.Errorf("dump missing richards content")
	}
}

func TestDumpUnknown(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-dump", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown benchmark should exit 2, got %d", code)
	}
	if !strings.Contains(errOut.String(), "jikes") {
		t.Errorf("error should list available benchmarks:\n%s", errOut.String())
	}
}

func TestSingleExhibits(t *testing.T) {
	// -table1 and -figure3 only need the (cached-by-nothing) pipeline; run
	// them in one process invocation each to keep the test fast but real.
	var out, errOut strings.Builder
	if code := run([]string{"-table1", "-figure3", "-summary"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"Table 1", "Figure 3", "Headline numbers", "12.5%"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(s, "Table 2") {
		t.Error("-table2 output present though not requested")
	}
}

func TestTimingsFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-timings", "-ablation", "-parallel", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"parse", "sema", "liveness", "Ablations"} {
		if !strings.Contains(s, want) {
			t.Errorf("-timings output missing %q:\n%s", want, s)
		}
	}
	// All exhibits share one session: 11 compiles total even with the
	// ablation sweep included.
	if !strings.Contains(s, "session: 11 frontend compile(s)") {
		t.Errorf("timings output should report 11 session compiles:\n%s", s)
	}
}

func TestCSVFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-csv"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 12 || !strings.HasPrefix(lines[0], "benchmark,") {
		t.Errorf("unexpected CSV output (%d lines)", len(lines))
	}
}

func TestTimeoutAbortsSweep(t *testing.T) {
	var out, errOut strings.Builder
	start := time.Now()
	if code := run([]string{"-timeout", "1ns", "-table1"}, &out, &errOut); code != 1 {
		t.Fatalf("timed-out sweep should exit 1, got %d\nstderr: %s", code, errOut.String())
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("sweep took %v to honor an expired timeout", elapsed)
	}
	if !strings.Contains(errOut.String(), "deadline") {
		t.Errorf("stderr missing deadline diagnostic:\n%s", errOut.String())
	}
}

func TestEngineFlagRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-engine", "jit"}, &out, &errOut); code != 2 {
		t.Fatalf("bad -engine should exit 2, got %d", code)
	}
	if !strings.Contains(errOut.String(), `unknown engine "jit"`) {
		t.Errorf("stderr missing engine diagnostic:\n%s", errOut.String())
	}
}

func TestEnginesExhibit(t *testing.T) {
	// The paper corpus is small enough to run under both engines in a
	// couple of seconds; the exhibit itself asserts byte-identity per row
	// (a divergence degrades the row and the run exits 1).
	var out, errOut strings.Builder
	if code := run([]string{"-engines"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"Engine comparison", "vm steps/s", "richards", "total"} {
		if !strings.Contains(s, want) {
			t.Errorf("-engines output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "Table 1") {
		t.Error("-engines should skip the profiled exhibits")
	}
	if strings.Contains(s, "[degraded") {
		t.Errorf("engines diverged:\n%s", s)
	}
}

func TestEnginesJSON(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-engines", "-json"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{`"tree_steps_per_sec"`, `"speedup"`, `"name": "sched"`} {
		if !strings.Contains(s, want) {
			t.Errorf("-engines -json output missing %q:\n%s", want, s)
		}
	}
}

func TestProfiledExhibitsThroughVM(t *testing.T) {
	// The profiled exhibits are byte-identical across engines; prove it
	// for the cheapest pair.
	var tree, vmOut, errOut strings.Builder
	if code := run([]string{"-table2", "-engine", "tree"}, &tree, &errOut); code != 0 {
		t.Fatalf("tree exit %d, stderr: %s", code, errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"-table2", "-engine", "vm"}, &vmOut, &errOut); code != 0 {
		t.Fatalf("vm exit %d, stderr: %s", code, errOut.String())
	}
	if tree.String() != vmOut.String() {
		t.Errorf("-table2 differs across engines:\ntree:\n%s\nvm:\n%s", tree.String(), vmOut.String())
	}
}
