// Command deadstrip applies the space optimization the paper motivates:
// it analyzes MC++ sources, removes the guaranteed-dead data members (and
// unreachable functions) whose removal is provably behaviour-preserving,
// and writes the transformed program to stdout.
//
// Usage:
//
//	deadstrip [flags] file.mcc [more.mcc ...] > stripped.mcc
//
// Diagnostics (what was removed, what was kept and why) go to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"deadmembers"
	"deadmembers/internal/api"
	"deadmembers/internal/buildinfo"
	"deadmembers/internal/client"
	"deadmembers/internal/heaplive"
	"deadmembers/internal/strip"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "deadstrip: internal error: %v\n", r)
			code = 1
		}
	}()
	fs := flag.NewFlagSet("deadstrip", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		timeout         = fs.Duration("timeout", 0, "abort the run after this duration (e.g. 30s; 0 = no limit)")
		keepUnreachable = fs.Bool("keep-unreachable", false, "do not remove unreachable functions")
		precisionFlag   = fs.String("precision", "flow", "liveness tier (paper, flow, or heap); the stripped output is tier-invariant, the flag is validated and forwarded for symmetry with deadlint")
		verify          = fs.Bool("verify", true, "run original and stripped programs and compare behaviour (local mode only)")
		parallel        = fs.Int("parallel", 0, "worker count for the parse and liveness stages (0 = all cores, 1 = sequential)")
		serverURL       = fs.String("server", "", "deadmemd base URL (e.g. http://127.0.0.1:8100): strip remotely; output is byte-identical to a local run")
		retries         = fs.Int("retries", 0, "max attempts per remote call, with backoff (0 = client default; needs -server)")
		showVersion     = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, buildinfo.Line("deadstrip"))
		return 0
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: deadstrip [flags] file.mcc ...")
		fs.PrintDefaults()
		return 2
	}

	precision, err := heaplive.ParsePrecision(*precisionFlag)
	if err != nil {
		fmt.Fprintf(stderr, "deadstrip: %v\n", err)
		return 2
	}

	var sources []deadmembers.Source
	for _, path := range fs.Args() {
		text, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "deadstrip: %v\n", err)
			return 1
		}
		sources = append(sources, deadmembers.Source{Name: path, Text: string(text)})
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *serverURL != "" {
		// The server refuses to strip from a degraded compilation (422),
		// so a successful response is always full-fidelity; behavioural
		// verification (-verify) needs the interpreter and stays local.
		req := &api.Request{KeepUnreachable: *keepUnreachable, Precision: precision.String()}
		for _, s := range sources {
			req.Sources = append(req.Sources, api.Source{Name: s.Name, Text: s.Text})
		}
		cl := client.New(client.Config{BaseURL: *serverURL, MaxAttempts: *retries})
		res, err := cl.Strip(ctx, req)
		if err != nil {
			fmt.Fprintf(stderr, "deadstrip: %v\n", err)
			return 1
		}
		if _, err := stdout.Write(res.Body); err != nil {
			fmt.Fprintf(stderr, "deadstrip: %v\n", err)
			return 1
		}
		return 0
	}

	// Compile once; the same compilation serves the verification run of
	// the original program and the strip transform (which consumes it).
	cfg := deadmembers.CompileConfig{Workers: *parallel}
	comp, err := deadmembers.CompileWithContext(ctx, cfg, sources...)
	if err != nil {
		fmt.Fprintf(stderr, "deadstrip: %v\n", err)
		return 1
	}
	if comp.Degraded() {
		// A degraded analysis could misclassify members: never emit a
		// transform derived from salvaged results.
		for _, f := range comp.Failures() {
			fmt.Fprintf(stderr, "deadstrip: degraded: %v\n", f)
		}
		fmt.Fprintf(stderr, "deadstrip: refusing to strip from a degraded compilation\n")
		return 1
	}

	var before *deadmembers.ExecResult
	if *verify {
		// Run the original before stripping: the transform rewrites the
		// compiled syntax trees in place.
		before, err = comp.RunContext(ctx)
		if err != nil {
			fmt.Fprintf(stderr, "deadstrip: original does not run: %v\n", err)
			return 1
		}
	}

	out := comp.Strip(deadmembers.Options{}, deadmembers.StripOptions{
		KeepUnreachable: *keepUnreachable,
	})

	for _, m := range out.RemovedMembers {
		fmt.Fprintf(stderr, "removed member   %s\n", m)
	}
	for _, f := range out.RemovedFunctions {
		fmt.Fprintf(stderr, "removed function %s\n", f)
	}
	for m, why := range out.KeptMembers {
		fmt.Fprintf(stderr, "kept dead member %s: %s\n", m, why)
	}

	if *verify {
		stripped, err := deadmembers.CompileWithContext(ctx, cfg, out.Sources...)
		if err != nil {
			fmt.Fprintf(stderr, "deadstrip: stripped program does not compile: %v\n", err)
			return 1
		}
		after, err := stripped.RunContext(ctx)
		if err != nil {
			fmt.Fprintf(stderr, "deadstrip: stripped program does not run: %v\n", err)
			return 1
		}
		if before.Output != after.Output || before.ExitCode != after.ExitCode {
			fmt.Fprintf(stderr, "deadstrip: BEHAVIOUR CHANGED — refusing to emit\n")
			return 1
		}
		fmt.Fprintf(stderr, "verified: identical behaviour (exit %d)\n", after.ExitCode)
	}

	if err := strip.WriteSources(stdout, out.Sources); err != nil {
		fmt.Fprintf(stderr, "deadstrip: %v\n", err)
		return 1
	}
	return 0
}
