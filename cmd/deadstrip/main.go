// Command deadstrip applies the space optimization the paper motivates:
// it analyzes MC++ sources, removes the guaranteed-dead data members (and
// unreachable functions) whose removal is provably behaviour-preserving,
// and writes the transformed program to stdout.
//
// Usage:
//
//	deadstrip [flags] file.mcc [more.mcc ...] > stripped.mcc
//
// Diagnostics (what was removed, what was kept and why) go to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"deadmembers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("deadstrip", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		keepUnreachable = fs.Bool("keep-unreachable", false, "do not remove unreachable functions")
		verify          = fs.Bool("verify", true, "run original and stripped programs and compare behaviour")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: deadstrip [flags] file.mcc ...")
		fs.PrintDefaults()
		return 2
	}

	var sources []deadmembers.Source
	for _, path := range fs.Args() {
		text, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "deadstrip: %v\n", err)
			return 1
		}
		sources = append(sources, deadmembers.Source{Name: path, Text: string(text)})
	}

	out, err := deadmembers.Strip(deadmembers.Options{}, deadmembers.StripOptions{
		KeepUnreachable: *keepUnreachable,
	}, sources...)
	if err != nil {
		fmt.Fprintf(stderr, "deadstrip: %v\n", err)
		return 1
	}

	for _, m := range out.RemovedMembers {
		fmt.Fprintf(stderr, "removed member   %s\n", m)
	}
	for _, f := range out.RemovedFunctions {
		fmt.Fprintf(stderr, "removed function %s\n", f)
	}
	for m, why := range out.KeptMembers {
		fmt.Fprintf(stderr, "kept dead member %s: %s\n", m, why)
	}

	if *verify {
		before, err := deadmembers.Run(sources...)
		if err != nil {
			fmt.Fprintf(stderr, "deadstrip: original does not run: %v\n", err)
			return 1
		}
		after, err := deadmembers.Run(out.Sources...)
		if err != nil {
			fmt.Fprintf(stderr, "deadstrip: stripped program does not run: %v\n", err)
			return 1
		}
		if before.Output != after.Output || before.ExitCode != after.ExitCode {
			fmt.Fprintf(stderr, "deadstrip: BEHAVIOUR CHANGED — refusing to emit\n")
			return 1
		}
		fmt.Fprintf(stderr, "verified: identical behaviour (exit %d)\n", after.ExitCode)
	}

	for _, s := range out.Sources {
		if len(out.Sources) > 1 {
			fmt.Fprintf(stdout, "// ---- %s ----\n", s.Name)
		}
		fmt.Fprint(stdout, s.Text)
	}
	return 0
}
