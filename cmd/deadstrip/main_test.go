package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deadmembers/internal/server"
)

func TestStripsAndVerifies(t *testing.T) {
	path := filepath.Join(t.TempDir(), "app.mcc")
	src := `
class Cfg {
public:
	int port;
	int legacyTimeout; // dead: written, never read
	Cfg() : port(80), legacyTimeout(30) {}
};
int main() {
	Cfg c;
	print(c.port);
	println();
	return 0;
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "removed member   Cfg::legacyTimeout") {
		t.Errorf("stderr missing removal report:\n%s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "verified: identical behaviour") {
		t.Errorf("stderr missing verification:\n%s", errOut.String())
	}
	if strings.Contains(out.String(), "legacyTimeout") {
		t.Errorf("stripped source still contains the member:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "int port;") {
		t.Errorf("stripped source lost the live member:\n%s", out.String())
	}
}

func TestUsageAndErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args should exit 2, got %d", code)
	}
	if code := run([]string{"/nope.mcc"}, &out, &errOut); code != 1 {
		t.Errorf("missing file should exit 1, got %d", code)
	}
}

// TestServerModeMatchesLocal: -server routes the strip through deadmemd;
// the emitted sources must be byte-identical to a local run (verification
// is local-only, so the local baseline runs with -verify=false).
func TestServerModeMatchesLocal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "app.mcc")
	src := `
class Cfg {
public:
	int port;
	int legacyTimeout; // dead: written, never read
	Cfg() : port(80), legacyTimeout(30) {}
};
int main() {
	Cfg c;
	print(c.port);
	println();
	return 0;
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var local, localErr strings.Builder
	if code := run([]string{"-verify=false", path}, &local, &localErr); code != 0 {
		t.Fatalf("local run: exit %d, stderr: %s", code, localErr.String())
	}

	srv, err := server.New(server.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var remote, remoteErr strings.Builder
	if code := run([]string{"-server", ts.URL, path}, &remote, &remoteErr); code != 0 {
		t.Fatalf("remote run: exit %d, stderr: %s", code, remoteErr.String())
	}
	if remote.String() != local.String() {
		t.Errorf("remote output diverges from local:\n--- remote ---\n%s--- local ---\n%s",
			remote.String(), local.String())
	}
}
