package main

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a strings.Builder safe for the writer goroutine (run)
// and the reader (test) to share.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestVersionFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-version"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "deadmemd ") {
		t.Errorf("version output = %q, want deadmemd prefix", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-nonsense"}, &out, &errOut); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"stray-arg"}, &out, &errOut); code != 2 {
		t.Errorf("positional arg: exit %d, want 2", code)
	}
	if code := run([]string{"-addr", "256.256.256.256:99999"}, &out, &errOut); code != 1 {
		t.Errorf("unlistenable addr: exit %d, want 1", code)
	}
}

// TestServeAndGracefulShutdown boots the daemon on an ephemeral port and
// delivers SIGTERM: run must drain and exit 0 within the grace period.
func TestServeAndGracefulShutdown(t *testing.T) {
	var out, errOut syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "2s"}, &out, &errOut)
	}()

	deadline := time.After(5 * time.Second)
	for !strings.Contains(errOut.String(), "listening on") {
		select {
		case code := <-done:
			t.Fatalf("exited early with %d, stderr: %s", code, errOut.String())
		case <-deadline:
			t.Fatalf("never started listening, stderr: %s", errOut.String())
		case <-time.After(10 * time.Millisecond):
		}
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d after SIGTERM, stderr: %s", code, errOut.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("did not shut down after SIGTERM, stderr: %s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "stopped") {
		t.Errorf("missing drain log, stderr: %s", errOut.String())
	}
}

// listenAddr extracts the base URL from the daemon's startup log line.
func listenAddr(t *testing.T, errOut *syncBuffer, done chan int) string {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		s := errOut.String()
		if i := strings.Index(s, "listening on "); i >= 0 {
			rest := s[i+len("listening on "):]
			if j := strings.IndexByte(rest, '\n'); j >= 0 {
				return strings.TrimSpace(rest[:j])
			}
		}
		select {
		case code := <-done:
			t.Fatalf("exited early with %d, stderr: %s", code, errOut.String())
		case <-deadline:
			t.Fatalf("never started listening, stderr: %s", errOut.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestLameDuckWindowRefusesNewWork: with -lame-duck set, SIGTERM keeps
// the listener up for the window — /readyz answers 503 (so load
// balancers see the failed probe) and new analysis requests are refused
// with 503 rather than a connection error — before the daemon exits 0.
func TestLameDuckWindowRefusesNewWork(t *testing.T) {
	var out, errOut syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-lame-duck", "1500ms", "-drain-timeout", "2s"}, &out, &errOut)
	}()
	base := listenAddr(t, &errOut, done)

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: status %d, want 200", resp.StatusCode)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Wait for the drain to take effect, then verify the lame-duck
	// contract while the window is still open.
	deadline := time.Now().Add(time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			t.Fatalf("listener gone during lame-duck window: %v", err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz never flipped to 503, last status %d", code)
		}
		time.Sleep(5 * time.Millisecond)
	}

	post, err := http.Post(base+"/v1/analyze?file=s.mcc", "text/x-mcc", strings.NewReader("int main() { return 0; }"))
	if err != nil {
		t.Fatalf("new request during lame-duck window: %v", err)
	}
	body, _ := io.ReadAll(post.Body)
	post.Body.Close()
	if post.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("new request during lame-duck: status %d, want 503 (body: %s)", post.StatusCode, body)
	}

	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d after SIGTERM, stderr: %s", code, errOut.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("did not shut down, stderr: %s", errOut.String())
	}
}
