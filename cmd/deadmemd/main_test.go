package main

import (
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a strings.Builder safe for the writer goroutine (run)
// and the reader (test) to share.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestVersionFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-version"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "deadmemd ") {
		t.Errorf("version output = %q, want deadmemd prefix", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-nonsense"}, &out, &errOut); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"stray-arg"}, &out, &errOut); code != 2 {
		t.Errorf("positional arg: exit %d, want 2", code)
	}
	if code := run([]string{"-addr", "256.256.256.256:99999"}, &out, &errOut); code != 1 {
		t.Errorf("unlistenable addr: exit %d, want 1", code)
	}
}

// TestServeAndGracefulShutdown boots the daemon on an ephemeral port and
// delivers SIGTERM: run must drain and exit 0 within the grace period.
func TestServeAndGracefulShutdown(t *testing.T) {
	var out, errOut syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "2s"}, &out, &errOut)
	}()

	deadline := time.After(5 * time.Second)
	for !strings.Contains(errOut.String(), "listening on") {
		select {
		case code := <-done:
			t.Fatalf("exited early with %d, stderr: %s", code, errOut.String())
		case <-deadline:
			t.Fatalf("never started listening, stderr: %s", errOut.String())
		case <-time.After(10 * time.Millisecond):
		}
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d after SIGTERM, stderr: %s", code, errOut.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("did not shut down after SIGTERM, stderr: %s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "stopped") {
		t.Errorf("missing drain log, stderr: %s", errOut.String())
	}
}
