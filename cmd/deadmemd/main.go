// Command deadmemd serves the dead-data-member analysis over HTTP: a
// long-running daemon in front of the staged engine, with a bounded
// compile-once session cache, admission control, per-request deadlines,
// and Prometheus metrics (see internal/server).
//
// Usage:
//
//	deadmemd [flags]
//
// Endpoints: POST /v1/analyze, /v1/lint, /v1/strip; GET /healthz,
// /readyz, /metrics. Responses are byte-identical to the stdout of
// deadmem, deadlint, and deadstrip for the same inputs and options.
//
// On SIGTERM or SIGINT the daemon drains gracefully: /readyz flips to
// 503, new analysis requests are refused, and in-flight requests are
// given -drain-timeout to finish.
//
// With -coordinator -workers=url,url,... the same binary runs in fleet
// mode instead: no local engine, requests are consistent-hash routed by
// compilation fingerprint across the listed workers with health-checked
// failover, and POST /v1/batch scatter-gathers a corpus with streamed
// partial results (see internal/fleet).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"deadmembers/internal/buildinfo"
	"deadmembers/internal/fleet"
	"deadmembers/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "deadmemd: internal error: %v\n", r)
			code = 1
		}
	}()
	fs := flag.NewFlagSet("deadmemd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr            = fs.String("addr", "127.0.0.1:8100", "listen address")
		parallel        = fs.Int("parallel", 0, "engine worker count per request (0 = all cores, 1 = sequential)")
		cacheMaxBytes   = fs.Int64("cache-max-bytes", 256<<20, "session cache bound on retained source bytes (negative = unbounded)")
		cacheMaxEntries = fs.Int("cache-max-entries", 128, "session cache bound on entry count (negative = unbounded)")
		maxInflight     = fs.Int("max-inflight", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
		maxQueue        = fs.Int("max-queue", 64, "max requests waiting for a slot before 429s (negative = no queue)")
		requestTimeout  = fs.Duration("request-timeout", 60*time.Second, "per-request analysis deadline (negative = none)")
		maxRequestBytes = fs.Int64("max-request-bytes", 64<<20, "request body size limit")
		drainTimeout    = fs.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
		lameDuck        = fs.Duration("lame-duck", 0, "window after SIGTERM during which the listener stays up but refuses new work with 503 (0 = close immediately)")
		persistDir      = fs.String("persist-dir", "", "directory for the on-disk artifact store (empty = persistence off)")
		persistMaxBytes = fs.Int64("persist-max-bytes", 1<<30, "on-disk artifact store bound; least-recently-used records are evicted past it")
		retryAfter      = fs.Duration("retry-after", 0, "fixed Retry-After hint for 429 responses (0 = adaptive, from queue depth and recent service time)")
		chaosRate       = fs.Float64("chaos-rate", 0, "fault-injection probability per injection point, 0..1 (0 = chaos off; never enable in production)")
		chaosSeed       = fs.Int64("chaos-seed", 1, "deterministic seed for the chaos injector")
		chaosLatency    = fs.Duration("chaos-latency", 50*time.Millisecond, "added latency when the chaos layer injects a delay")
		coordinator     = fs.Bool("coordinator", false, "run as a fleet coordinator instead of a worker (requires -workers)")
		workers         = fs.String("workers", "", "comma-separated worker base URLs for -coordinator mode")
		healthInterval  = fs.Duration("health-interval", 2*time.Second, "coordinator /readyz probe period per worker")
		healthTimeout   = fs.Duration("health-timeout", time.Second, "coordinator health probe timeout")
		healthFails     = fs.Int("health-fails", 3, "consecutive failed probes before a worker is ejected from routing")
		fleetRetry      = fs.Int("fleet-retry-budget", 3, "max distinct workers one request may try before the coordinator gives up")
		batchConc       = fs.Int("batch-concurrency", 0, "max concurrently in-flight /v1/batch units (0 = 2x workers)")
		showVersion     = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, buildinfo.Line("deadmemd"))
		return 0
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: deadmemd [flags]")
		fs.PrintDefaults()
		return 2
	}

	var (
		handler    http.Handler
		startDrain func()
	)
	if *coordinator {
		var urls []string
		for _, w := range strings.Split(*workers, ",") {
			if w = strings.TrimSpace(w); w != "" {
				urls = append(urls, w)
			}
		}
		if len(urls) == 0 {
			fmt.Fprintln(stderr, "deadmemd: -coordinator requires -workers=url,url,...")
			return 2
		}
		co, err := fleet.New(fleet.Config{
			Workers:             urls,
			HealthInterval:      *healthInterval,
			HealthTimeout:       *healthTimeout,
			HealthFailThreshold: *healthFails,
			RetryBudget:         *fleetRetry,
			BatchConcurrency:    *batchConc,
			RequestTimeout:      *requestTimeout,
			MaxRequestBytes:     *maxRequestBytes,
		})
		if err != nil {
			fmt.Fprintf(stderr, "deadmemd: %v\n", err)
			return 1
		}
		defer co.Close()
		handler = co.Handler()
		startDrain = co.StartDrain
		fmt.Fprintf(stderr, "deadmemd: coordinating %d workers\n", len(urls))
	} else {
		if *workers != "" {
			fmt.Fprintln(stderr, "deadmemd: -workers requires -coordinator")
			return 2
		}
		srv, err := server.New(server.Config{
			Workers:         *parallel,
			CacheMaxBytes:   *cacheMaxBytes,
			CacheMaxEntries: *cacheMaxEntries,
			MaxInflight:     *maxInflight,
			MaxQueue:        *maxQueue,
			RequestTimeout:  *requestTimeout,
			MaxRequestBytes: *maxRequestBytes,
			PersistDir:      *persistDir,
			PersistMaxBytes: *persistMaxBytes,
			RetryAfter:      *retryAfter,
			ChaosRate:       *chaosRate,
			ChaosSeed:       *chaosSeed,
			ChaosLatency:    *chaosLatency,
		})
		if err != nil {
			fmt.Fprintf(stderr, "deadmemd: %v\n", err)
			return 1
		}
		if *chaosRate > 0 {
			fmt.Fprintf(stderr, "deadmemd: CHAOS MODE: injecting faults at rate %g (seed %d)\n", *chaosRate, *chaosSeed)
		}
		handler = srv.Handler()
		startDrain = srv.StartDrain
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "deadmemd: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stderr, "deadmemd: listening on http://%s\n", ln.Addr())

	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "deadmemd: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: stop advertising readiness, refuse new analysis
	// work, and give in-flight requests the grace period to finish. The
	// lame-duck window keeps the listener up (returning 503s) long enough
	// for load balancers to observe the failed readiness probe before
	// connections start being refused outright.
	fmt.Fprintf(stderr, "deadmemd: draining (lame-duck %v, grace %v)\n", *lameDuck, *drainTimeout)
	startDrain()
	if *lameDuck > 0 {
		time.Sleep(*lameDuck)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "deadmemd: drain incomplete: %v\n", err)
		return 1
	}
	fmt.Fprintln(stderr, "deadmemd: stopped")
	return 0
}
