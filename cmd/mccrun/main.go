// Command mccrun compiles and executes MC++ source files on the built-in
// interpreter, optionally with heap profiling.
//
// Usage:
//
//	mccrun [flags] file.mcc [more.mcc ...]
//
// The process exits with the interpreted program's exit code; compile or
// runtime errors, timeouts, and internal errors exit with 1, usage errors
// with 2.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"deadmembers"
	"deadmembers/internal/buildinfo"
	"deadmembers/internal/heaplive"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "mccrun: internal error: %v\n", r)
			code = 1
		}
	}()
	fs := flag.NewFlagSet("mccrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		timeout       = fs.Duration("timeout", 0, "abort compilation and execution after this duration (e.g. 30s; 0 = no limit)")
		profile       = fs.Bool("profile", false, "run the dead-member analysis and report heap statistics")
		maxSteps      = fs.Int64("max-steps", 0, "statement execution limit (0 = default)")
		parallel      = fs.Int("parallel", 0, "worker count for the parse and liveness stages (0 = all cores, 1 = sequential)")
		engineFlag    = fs.String("engine", "tree", "execution engine: tree (AST walker) or vm (bytecode + inline caches); output and heap statistics are byte-identical")
		precisionFlag = fs.String("precision", "flow", "liveness tier (paper, flow, or heap); the dead-member report is tier-invariant, the flag is validated and forwarded for symmetry with deadlint")
		showVersion   = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, buildinfo.Line("mccrun"))
		return 0
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: mccrun [flags] file.mcc ...")
		fs.PrintDefaults()
		return 2
	}
	eng, err := deadmembers.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintf(stderr, "mccrun: %v\n", err)
		return 2
	}
	if _, err := heaplive.ParsePrecision(*precisionFlag); err != nil {
		fmt.Fprintf(stderr, "mccrun: %v\n", err)
		return 2
	}

	var sources []deadmembers.Source
	for _, path := range fs.Args() {
		text, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "mccrun: %v\n", err)
			return 1
		}
		sources = append(sources, deadmembers.Source{Name: path, Text: string(text)})
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	comp, err := deadmembers.CompileWithContext(ctx, deadmembers.CompileConfig{Workers: *parallel}, sources...)
	if err != nil {
		fmt.Fprintf(stderr, "mccrun: %v\n", err)
		return 1
	}
	for _, f := range comp.Failures() {
		fmt.Fprintf(stderr, "mccrun: degraded: %v\n", f)
	}

	if *profile {
		prof, err := comp.ProfileContext(ctx, deadmembers.Options{MaxSteps: *maxSteps, Engine: eng})
		if err != nil {
			fmt.Fprintf(stderr, "mccrun: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, prof.Exec.Output)
		if prof.AccountingErr != nil {
			fmt.Fprintf(stderr, "mccrun: degraded: %v\n", prof.AccountingErr)
		}
		l := prof.Ledger
		fmt.Fprintf(stderr, "---- heap profile ----\n")
		fmt.Fprintf(stderr, "objects allocated:        %d\n", l.TotalObjects)
		fmt.Fprintf(stderr, "object space:             %d bytes\n", l.TotalBytes)
		fmt.Fprintf(stderr, "dead data member space:   %d bytes (%.2f%%)\n", l.DeadBytes, l.DeadPercent())
		fmt.Fprintf(stderr, "high water mark:          %d bytes\n", l.HighWater)
		fmt.Fprintf(stderr, "HWM w/o dead members:     %d bytes (-%.2f%%)\n", l.AdjustedHighWater, l.HighWaterReductionPercent())
		fmt.Fprintf(stderr, "per-class allocation profile:\n")
		for _, st := range l.ByClass() {
			fmt.Fprintf(stderr, "  %-24s %8d objects %10d bytes %8d dead\n",
				st.Class.Name, st.Count, st.Bytes, st.Dead)
		}
		if comp.Degraded() || prof.AccountingErr != nil {
			return 1
		}
		return prof.Exec.ExitCode
	}

	res, err := comp.RunContextEngine(ctx, eng)
	if err != nil {
		fmt.Fprintf(stderr, "mccrun: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, res.Output)
	if comp.Degraded() {
		return 1
	}
	return res.ExitCode
}
