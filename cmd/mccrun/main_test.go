package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func write(t *testing.T, name, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunsProgram(t *testing.T) {
	path := write(t, "hello.mcc", `
int main() { print("hello "); print(2+2*10); println(); return 3; }`)
	var out, errOut strings.Builder
	code := run([]string{path}, &out, &errOut)
	if code != 3 {
		t.Fatalf("exit = %d, want the program's return value 3 (stderr: %s)", code, errOut.String())
	}
	if out.String() != "hello 22\n" {
		t.Errorf("output = %q", out.String())
	}
}

func TestProfileFlag(t *testing.T) {
	path := write(t, "p.mcc", `
class Box { public: int keep; int waste; Box() : keep(1), waste(2) {} };
int main() {
	Box* b = new Box();
	int r = b->keep;
	delete b;
	return r;
}`)
	var out, errOut strings.Builder
	code := run([]string{"-profile", path}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	prof := errOut.String()
	for _, want := range []string{"heap profile", "objects allocated:        1", "dead data member space:   4 bytes"} {
		if !strings.Contains(prof, want) {
			t.Errorf("profile missing %q:\n%s", want, prof)
		}
	}
}

func TestMaxStepsFlag(t *testing.T) {
	path := write(t, "loop.mcc", `
int main() { int s = 0; for (int i = 0; i < 100000; i++) { s++; } return 0; }`)
	var out, errOut strings.Builder
	if code := run([]string{"-max-steps", "50", "-profile", path}, &out, &errOut); code != 1 {
		t.Fatalf("step-limited run should exit 1, got %d", code)
	}
	if !strings.Contains(errOut.String(), "step limit") {
		t.Errorf("stderr missing step-limit error:\n%s", errOut.String())
	}
}

func TestRuntimeErrorReported(t *testing.T) {
	path := write(t, "crash.mcc", `
int main() { int* p = nullptr; return *p; }`)
	var out, errOut strings.Builder
	if code := run([]string{path}, &out, &errOut); code != 1 {
		t.Fatalf("runtime error should exit 1, got %d", code)
	}
	if !strings.Contains(errOut.String(), "null pointer dereference") {
		t.Errorf("stderr missing runtime error:\n%s", errOut.String())
	}
}

func TestUsage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args should exit 2, got %d", code)
	}
}

func TestMissingInputExit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.mcc")
	var out, errOut strings.Builder
	if code := run([]string{path}, &out, &errOut); code != 1 {
		t.Errorf("missing input should exit 1, got %d", code)
	}
	msg := errOut.String()
	if !strings.HasPrefix(msg, "mccrun: ") || strings.Count(strings.TrimRight(msg, "\n"), "\n") != 0 {
		t.Errorf("want a one-line mccrun diagnostic, got:\n%s", msg)
	}
	if strings.Contains(msg, "goroutine") {
		t.Errorf("diagnostic must not include a Go stack trace:\n%s", msg)
	}
}

func TestTimeoutAbortsRun(t *testing.T) {
	path := write(t, "spin.mcc", `
int main() { int n = 0; while (true) { n = n + 1; } return n; }`)
	var out, errOut strings.Builder
	start := time.Now()
	if code := run([]string{"-timeout", "50ms", path}, &out, &errOut); code != 1 {
		t.Fatalf("timed-out run should exit 1, got %d", code)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("run took %v to honor a 50ms timeout", elapsed)
	}
	if !strings.Contains(errOut.String(), "deadline") {
		t.Errorf("stderr missing deadline diagnostic:\n%s", errOut.String())
	}
}

func TestEngineFlag(t *testing.T) {
	path := write(t, "eng.mcc", `
class Node { public: int v; Node* next; Node(int x) : v(x), next(nullptr) {} };
int main() {
	Node* head = nullptr;
	int sum = 0;
	for (int i = 0; i < 50; i++) { Node* n = new Node(i); n->next = head; head = n; }
	while (head != nullptr) { sum = sum + head->v; Node* d = head; head = head->next; delete d; }
	print(sum); println();
	return 0;
}`)
	runOne := func(engine string) (string, string, int) {
		var out, errOut strings.Builder
		code := run([]string{"-engine", engine, "-profile", path}, &out, &errOut)
		return out.String(), errOut.String(), code
	}
	treeOut, treeErr, treeCode := runOne("tree")
	vmOut, vmErr, vmCode := runOne("vm")
	if treeCode != vmCode {
		t.Fatalf("exit codes differ: tree=%d vm=%d", treeCode, vmCode)
	}
	if treeOut != vmOut {
		t.Errorf("stdout differs:\ntree: %q\nvm:   %q", treeOut, vmOut)
	}
	if treeErr != vmErr {
		t.Errorf("heap profile differs:\ntree:\n%s\nvm:\n%s", treeErr, vmErr)
	}
}

func TestEngineFlagRejected(t *testing.T) {
	path := write(t, "e.mcc", `int main() { return 0; }`)
	var out, errOut strings.Builder
	if code := run([]string{"-engine", "jit", path}, &out, &errOut); code != 2 {
		t.Fatalf("bad -engine should exit 2, got %d", code)
	}
	if !strings.Contains(errOut.String(), `unknown engine "jit"`) {
		t.Errorf("stderr missing engine diagnostic:\n%s", errOut.String())
	}
}

func TestPrecisionFlagForwarded(t *testing.T) {
	path := write(t, "prec.mcc", `
class Box { public: int keep; int waste; Box() : keep(1), waste(2) {} };
int main() { Box* b = new Box(); int r = b->keep; delete b; return r; }`)
	var base string
	for _, tier := range []string{"paper", "flow", "heap"} {
		var out, errOut strings.Builder
		if code := run([]string{"-precision", tier, "-profile", path}, &out, &errOut); code != 1 {
			t.Fatalf("-precision=%s: exit = %d, want 1", tier, code)
		}
		if base == "" {
			base = errOut.String()
		} else if errOut.String() != base {
			t.Errorf("-precision=%s changed the profile (the report is tier-invariant):\n%s", tier, errOut.String())
		}
	}
}

func TestPrecisionFlagRejected(t *testing.T) {
	path := write(t, "e.mcc", `int main() { return 0; }`)
	var out, errOut strings.Builder
	if code := run([]string{"-precision", "psychic", path}, &out, &errOut); code != 2 {
		t.Fatalf("bad -precision should exit 2, got %d", code)
	}
	if !strings.Contains(errOut.String(), "psychic") {
		t.Errorf("stderr missing precision diagnostic:\n%s", errOut.String())
	}
}
