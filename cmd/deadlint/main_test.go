package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"deadmembers/internal/server"
)

func examples(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "mcc", "*.mcc"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	sort.Strings(files)
	return files
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestTextFindings(t *testing.T) {
	code, out, errw := runCLI(t, filepath.Join("..", "..", "examples", "mcc", "overwrite.mcc"))
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errw)
	}
	if !strings.Contains(out, "dead-store") || !strings.Contains(out, "timeout") {
		t.Errorf("missing expected finding:\n%s", out)
	}
}

func TestCleanProgramSilent(t *testing.T) {
	code, out, _ := runCLI(t, filepath.Join("..", "..", "examples", "mcc", "clean.mcc"))
	if code != 0 || out != "" {
		t.Errorf("clean program: exit %d, stdout %q", code, out)
	}
}

func TestJSONFormat(t *testing.T) {
	code, out, _ := runCLI(t, "-format", "json", filepath.Join("..", "..", "examples", "mcc", "writeonly.mcc"))
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	var rep struct {
		Findings []struct {
			Check  string `json:"check"`
			Member string `json:"member"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, out)
	}
	if len(rep.Findings) != 2 {
		t.Fatalf("findings = %d, want 2 orphaned stores", len(rep.Findings))
	}
	for _, f := range rep.Findings {
		if f.Check != "write-only-member" || f.Member != "Cache::hits" {
			t.Errorf("unexpected finding %+v", f)
		}
	}
}

func TestSARIFFormat(t *testing.T) {
	code, out, _ := runCLI(t, "-format", "sarif", filepath.Join("..", "..", "examples", "mcc", "overwrite.mcc"))
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("stdout is not JSON: %v", err)
	}
	if doc["version"] != "2.1.0" {
		t.Errorf("version = %v", doc["version"])
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Errorf("no args: exit = %d, want 2", code)
	}
	if code, _, errw := runCLI(t, "-format", "xml", "x.mcc"); code != 2 || !strings.Contains(errw, "unknown -format") {
		t.Errorf("bad format: exit = %d, stderr %q", code, errw)
	}
	if code, _, _ := runCLI(t, "-callgraph", "magic", "x.mcc"); code != 2 {
		t.Errorf("bad callgraph: exit = %d, want 2", code)
	}
}

func TestMissingFile(t *testing.T) {
	code, _, errw := runCLI(t, filepath.Join(t.TempDir(), "absent.mcc"))
	if code != 1 || !strings.Contains(errw, "deadlint:") {
		t.Errorf("missing file: exit = %d, stderr %q", code, errw)
	}
}

func TestCompileErrorExit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "broken.mcc")
	if err := os.WriteFile(path, []byte("int main() { return undeclared; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errw := runCLI(t, path)
	if code != 1 {
		t.Errorf("compile error: exit = %d, want 1", code)
	}
	if out != "" {
		t.Errorf("compile error should leave stdout empty, got %q", out)
	}
	if errw == "" {
		t.Error("compile error should be diagnosed on stderr")
	}
}

// TestParallelByteIdentical is the acceptance criterion: for every
// example program and every format, stdout is byte-identical between
// -parallel 1 and higher worker counts.
func TestParallelByteIdentical(t *testing.T) {
	for _, file := range examples(t) {
		for _, format := range []string{"text", "json", "sarif"} {
			name := fmt.Sprintf("%s/%s", filepath.Base(file), format)
			t.Run(name, func(t *testing.T) {
				code, seq, _ := runCLI(t, "-format", format, "-parallel", "1", file)
				if code != 0 {
					t.Fatalf("sequential run failed: exit %d", code)
				}
				for _, n := range []string{"2", "8"} {
					codeN, par, _ := runCLI(t, "-format", format, "-parallel", n, file)
					if codeN != 0 {
						t.Fatalf("-parallel %s run failed: exit %d", n, codeN)
					}
					if par != seq {
						t.Fatalf("-parallel %s output differs from sequential:\nseq:\n%s\npar:\n%s", n, seq, par)
					}
				}
			})
		}
	}
}

// TestTimingsOnStderr verifies -timings does not disturb the
// machine-readable stdout stream.
func TestTimingsOnStderr(t *testing.T) {
	file := filepath.Join("..", "..", "examples", "mcc", "overwrite.mcc")
	_, plain, _ := runCLI(t, file)
	code, out, errw := runCLI(t, "-timings", file)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if out != plain {
		t.Errorf("-timings changed stdout:\n%q\nvs\n%q", out, plain)
	}
	for _, stage := range []string{"parse", "sema", "callgraph", "liveness", "lint", "total"} {
		if !strings.Contains(errw, stage) {
			t.Errorf("timings table missing %q:\n%s", stage, errw)
		}
	}
}

func TestBudgetDegradesExitCode(t *testing.T) {
	code, _, errw := runCLI(t, "-budget", "1", filepath.Join("..", "..", "examples", "mcc", "overwrite.mcc"))
	if code != 1 {
		t.Errorf("budget 1: exit = %d, want 1", code)
	}
	if !strings.Contains(errw, "RESULT DEGRADED") {
		t.Errorf("missing degraded banner:\n%s", errw)
	}
}

// TestServerModeMatchesLocal: -server routes the lint through deadmemd
// and the stdout must be byte-identical to a local run, per format.
func TestServerModeMatchesLocal(t *testing.T) {
	path := filepath.Join("..", "..", "examples", "mcc", "overwrite.mcc")
	srv, err := server.New(server.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, format := range []string{"text", "json", "sarif"} {
		localCode, local, localErr := runCLI(t, "-format", format, path)
		if localCode != 0 {
			t.Fatalf("%s local: exit %d, stderr: %s", format, localCode, localErr)
		}
		remoteCode, remote, remoteErr := runCLI(t, "-format", format, "-server", ts.URL, path)
		if remoteCode != 0 {
			t.Fatalf("%s remote: exit %d, stderr: %s", format, remoteCode, remoteErr)
		}
		if remote != local {
			t.Errorf("%s: remote output diverges from local:\n--- remote ---\n%s--- local ---\n%s",
				format, remote, local)
		}
	}
}
