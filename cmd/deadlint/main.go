// Command deadlint emits flow-sensitive diagnostics for MC++ programs:
// dead stores to data members (a write no execution path can observe)
// and write-only members (the flow-insensitive dead set of Sweeney &
// Tip, explained store site by store site).
//
// Usage:
//
//	deadlint [flags] file.mcc [more.mcc ...]
//
// Findings are sorted by (file, line, col, check) and printed in text
// (default), JSON, or SARIF 2.1.0. Exit status is 0 on success — even
// when findings are reported — 1 on compilation errors, degraded runs,
// timeouts, and internal errors, 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"deadmembers/internal/api"
	"deadmembers/internal/buildinfo"
	"deadmembers/internal/callgraph"
	"deadmembers/internal/client"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/engine"
	"deadmembers/internal/heaplive"
	"deadmembers/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "deadlint: internal error: %v\n", r)
			code = 1
		}
	}()
	fs := flag.NewFlagSet("deadlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		format         = fs.String("format", "text", "output format: text, json, or sarif")
		timeout        = fs.Duration("timeout", 0, "abort the run after this duration (e.g. 30s; 0 = no limit)")
		parallel       = fs.Int("parallel", 0, "worker count for the parse, liveness, and lint stages (0 = all cores, 1 = sequential)")
		budget         = fs.Int("budget", 0, "dataflow solver step budget per function (0 = automatic)")
		precisionFlag  = fs.String("precision", "flow", "liveness tier: paper (flow-insensitive only), flow, or heap (access-graph chained paths)")
		callgraphMode  = fs.String("callgraph", "rta", "call graph construction: rta, cha, or all")
		libraries      = fs.String("library", "", "comma-separated class names treated as library classes")
		trustDowncasts = fs.Bool("trust-downcasts", false, "treat all downcasts as verified safe")
		stageTimings   = fs.Bool("timings", false, "print per-stage wall-clock timings to stderr (local mode only)")
		serverURL      = fs.String("server", "", "deadmemd base URL (e.g. http://127.0.0.1:8100): lint remotely; output is byte-identical to a local run")
		retries        = fs.Int("retries", 0, "max attempts per remote call, with backoff (0 = client default; needs -server)")
		showVersion    = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, buildinfo.Line("deadlint"))
		return 0
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: deadlint [flags] file.mcc ...")
		fs.PrintDefaults()
		return 2
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "deadlint: unknown -format %q\n", *format)
		return 2
	}
	precision, err := heaplive.ParsePrecision(*precisionFlag)
	if err != nil {
		fmt.Fprintf(stderr, "deadlint: %v\n", err)
		return 2
	}

	opts := deadmember.Options{
		TrustDowncasts: *trustDowncasts,
	}
	switch strings.ToLower(*callgraphMode) {
	case "rta":
		opts.CallGraph = callgraph.RTA
	case "cha":
		opts.CallGraph = callgraph.CHA
	case "all":
		opts.CallGraph = callgraph.ALL
	default:
		fmt.Fprintf(stderr, "deadlint: unknown -callgraph %q\n", *callgraphMode)
		return 2
	}
	if *libraries != "" {
		opts.LibraryClasses = strings.Split(*libraries, ",")
	}

	var sources []engine.Source
	for _, path := range fs.Args() {
		text, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "deadlint: %v\n", err)
			return 1
		}
		sources = append(sources, engine.Source{Name: path, Text: string(text)})
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *serverURL != "" {
		req := &api.Request{
			Options: api.Options{
				CallGraph:      strings.ToLower(*callgraphMode),
				TrustDowncasts: *trustDowncasts,
				Library:        opts.LibraryClasses,
			},
			Format:    *format,
			Budget:    *budget,
			Precision: precision.String(),
		}
		for _, s := range sources {
			req.Sources = append(req.Sources, api.Source{Name: s.Name, Text: s.Text})
		}
		cl := client.New(client.Config{BaseURL: *serverURL, MaxAttempts: *retries})
		res, err := cl.Lint(ctx, req)
		if err != nil {
			fmt.Fprintf(stderr, "deadlint: %v\n", err)
			return 1
		}
		if _, err := stdout.Write(res.Body); err != nil {
			fmt.Fprintf(stderr, "deadlint: %v\n", err)
			return 1
		}
		if res.Degraded {
			fmt.Fprintln(stderr, "RESULT DEGRADED: findings may be missing; the server contained a pipeline fault")
			return 1
		}
		return 0
	}

	// One Session: repeated invocations with the same sources (service
	// use, or multiple checks later) hit the compile-once cache.
	sess := engine.NewSession(engine.Config{Workers: *parallel})
	comp := sess.CompileContext(ctx, sources...)
	if err := comp.Err(); err != nil {
		fmt.Fprintf(stderr, "deadlint: %v\n", err)
		return 1
	}
	res, timings, err := comp.LintContext(ctx, opts, lint.Options{Budget: *budget, Precision: precision})
	if err != nil {
		fmt.Fprintf(stderr, "deadlint: %v\n", err)
		return 1
	}

	degraded := comp.Degraded() || res.Degraded()
	for _, f := range comp.Failures {
		fmt.Fprintf(stderr, "deadlint: degraded: %v\n", f)
	}
	for _, f := range res.Failures {
		fmt.Fprintf(stderr, "deadlint: degraded: %v\n", f)
	}

	switch *format {
	case "text":
		err = lint.WriteText(stdout, res)
	case "json":
		err = lint.WriteJSON(stdout, res)
	case "sarif":
		err = lint.WriteSARIF(stdout, res)
	}
	if err != nil {
		fmt.Fprintf(stderr, "deadlint: %v\n", err)
		return 1
	}

	if *stageTimings {
		fmt.Fprintf(stderr, "engine stage timings:\n")
		for _, row := range []struct {
			name string
			d    time.Duration
		}{
			{"parse", timings.Parse},
			{"sema", timings.Sema},
			{"callgraph", timings.CallGraph},
			{"liveness", timings.Liveness},
			{"lint", timings.Lint},
			{"total", timings.Total()},
		} {
			fmt.Fprintf(stderr, "  %-10s %12v\n", row.name, row.d)
		}
	}
	if degraded {
		fmt.Fprintln(stderr, "RESULT DEGRADED: findings may be missing; see diagnostics above")
		return 1
	}
	return 0
}
