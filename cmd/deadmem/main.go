// Command deadmem detects dead data members in MC++ source files using the
// algorithm of Sweeney & Tip (PLDI 1998).
//
// Usage:
//
//	deadmem [flags] file.mcc [more.mcc ...]
//
// Exit status is 0 on success (even when dead members are found), 1 on
// compilation errors, degraded runs (a pipeline stage crashed and was
// contained), timeouts, and internal errors, 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"deadmembers"
	"deadmembers/internal/api"
	"deadmembers/internal/buildinfo"
	"deadmembers/internal/client"
	"deadmembers/internal/heaplive"
	"deadmembers/internal/textreport"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "deadmem: internal error: %v\n", r)
			code = 1
		}
	}()
	fs := flag.NewFlagSet("deadmem", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		timeout        = fs.Duration("timeout", 0, "abort the run after this duration (e.g. 30s; 0 = no limit)")
		callgraphMode  = fs.String("callgraph", "rta", "call graph construction: rta, cha, or all")
		sizeofPolicy   = fs.String("sizeof", "ignore", "sizeof policy: ignore (paper setting) or conservative")
		noDeleteRule   = fs.Bool("no-delete-rule", false, "disable the delete/free special case")
		trustDowncasts = fs.Bool("trust-downcasts", false, "treat all downcasts as verified safe")
		writesAreUses  = fs.Bool("writes-are-uses", false, "ablation: treat every write as a use (paper §2 argues against this)")
		libraries      = fs.String("library", "", "comma-separated class names treated as library classes")
		precisionFlag  = fs.String("precision", "flow", "liveness tier (paper, flow, or heap); the dead-member report is tier-invariant, the flag is validated and forwarded for symmetry with deadlint")
		verbose        = fs.Bool("v", false, "also list live members with the reason they are live")
		stageTimings   = fs.Bool("verbose", false, "print per-stage wall-clock timings of the engine pipeline")
		parallel       = fs.Int("parallel", 0, "worker count for the parse and liveness stages (0 = all cores, 1 = sequential)")
		perClass       = fs.Bool("classes", false, "print a per-class breakdown (IDE-feedback view)")
		unreachable    = fs.Bool("unreachable", false, "also list unreachable functions")
		serverURL      = fs.String("server", "", "deadmemd base URL (e.g. http://127.0.0.1:8100): run the analysis remotely; output is byte-identical to a local run")
		retries        = fs.Int("retries", 0, "max attempts per remote call, with backoff (0 = client default; needs -server)")
		showVersion    = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, buildinfo.Line("deadmem"))
		return 0
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: deadmem [flags] file.mcc ...")
		fs.PrintDefaults()
		return 2
	}

	opts := deadmembers.Options{
		NoDeleteSpecialCase: *noDeleteRule,
		TrustDowncasts:      *trustDowncasts,
		WritesAreUses:       *writesAreUses,
	}
	switch strings.ToLower(*callgraphMode) {
	case "rta":
		opts.CallGraph = deadmembers.CallGraphRTA
	case "cha":
		opts.CallGraph = deadmembers.CallGraphCHA
	case "all":
		opts.CallGraph = deadmembers.CallGraphALL
	default:
		fmt.Fprintf(stderr, "deadmem: unknown -callgraph %q\n", *callgraphMode)
		return 2
	}
	switch strings.ToLower(*sizeofPolicy) {
	case "ignore":
		opts.Sizeof = deadmembers.SizeofIgnore
	case "conservative":
		opts.Sizeof = deadmembers.SizeofConservative
	default:
		fmt.Fprintf(stderr, "deadmem: unknown -sizeof %q\n", *sizeofPolicy)
		return 2
	}
	if *libraries != "" {
		opts.LibraryClasses = strings.Split(*libraries, ",")
	}
	precision, err := heaplive.ParsePrecision(*precisionFlag)
	if err != nil {
		fmt.Fprintf(stderr, "deadmem: %v\n", err)
		return 2
	}

	var sources []deadmembers.Source
	for _, path := range fs.Args() {
		text, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "deadmem: %v\n", err)
			return 1
		}
		sources = append(sources, deadmembers.Source{Name: path, Text: string(text)})
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *serverURL != "" {
		req := &api.Request{
			Options: api.Options{
				CallGraph:      strings.ToLower(*callgraphMode),
				Sizeof:         strings.ToLower(*sizeofPolicy),
				NoDeleteRule:   *noDeleteRule,
				TrustDowncasts: *trustDowncasts,
				WritesAreUses:  *writesAreUses,
				Library:        opts.LibraryClasses,
			},
			Verbose:     *verbose,
			Classes:     *perClass,
			Unreachable: *unreachable,
			Precision:   precision.String(),
		}
		for _, s := range sources {
			req.Sources = append(req.Sources, api.Source{Name: s.Name, Text: s.Text})
		}
		cl := client.New(client.Config{BaseURL: *serverURL, MaxAttempts: *retries})
		res, err := cl.Analyze(ctx, req)
		if err != nil {
			fmt.Fprintf(stderr, "deadmem: %v\n", err)
			return 1
		}
		if _, err := stdout.Write(res.Body); err != nil {
			fmt.Fprintf(stderr, "deadmem: %v\n", err)
			return 1
		}
		if res.Degraded {
			fmt.Fprintln(stderr, "deadmem: degraded: the server contained a pipeline fault; results may be incomplete")
			return 1
		}
		return 0
	}

	comp, err := deadmembers.CompileWithContext(ctx, deadmembers.CompileConfig{Workers: *parallel}, sources...)
	if err != nil {
		fmt.Fprintf(stderr, "deadmem: %v\n", err)
		return 1
	}
	res, timings, err := comp.AnalyzeTimedContext(ctx, opts)
	if err != nil {
		fmt.Fprintf(stderr, "deadmem: %v\n", err)
		return 1
	}
	degraded := comp.Degraded() || res.Degraded()
	for _, f := range comp.Failures() {
		fmt.Fprintf(stderr, "deadmem: degraded: %v\n", f)
	}
	for _, f := range res.Failures {
		fmt.Fprintf(stderr, "deadmem: degraded: %v\n", f)
	}

	if err := textreport.Write(stdout, res, textreport.Options{
		Verbose:     *verbose,
		PerClass:    *perClass,
		Unreachable: *unreachable,
		Degraded:    degraded,
	}); err != nil {
		fmt.Fprintf(stderr, "deadmem: %v\n", err)
		return 1
	}

	if *stageTimings {
		fmt.Fprintf(stdout, "\nengine stage timings:\n")
		fmt.Fprintf(stdout, "  parse      %12v\n", timings.Parse)
		fmt.Fprintf(stdout, "  sema       %12v\n", timings.Sema)
		fmt.Fprintf(stdout, "  callgraph  %12v\n", timings.CallGraph)
		fmt.Fprintf(stdout, "  liveness   %12v\n", timings.Liveness)
		fmt.Fprintf(stdout, "  total      %12v\n", timings.Total())
	}
	if degraded {
		return 1
	}
	return 0
}
