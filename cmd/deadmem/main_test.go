package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deadmembers/internal/server"
)

const sample = `
class Gadget {
public:
	int used;
	int unused;   // dead: write-only
	Gadget() : used(1), unused(2) {}
};
int main() {
	Gadget g;
	return g.used;
}
`

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sample.mcc")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReportsDeadMembers(t *testing.T) {
	path := writeSample(t)
	var out, errOut strings.Builder
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Gadget::unused") {
		t.Errorf("output missing dead member:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "1 dead (50.0%)") {
		t.Errorf("output missing stats line:\n%s", out.String())
	}
}

func TestVerboseListsLiveMembers(t *testing.T) {
	path := writeSample(t)
	var out, errOut strings.Builder
	if code := run([]string{"-v", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "Gadget::used") || !strings.Contains(out.String(), "read") {
		t.Errorf("verbose output missing live member with reason:\n%s", out.String())
	}
}

func TestVerbosePrintsStageTimings(t *testing.T) {
	path := writeSample(t)
	var out, errOut strings.Builder
	if code := run([]string{"-verbose", "-parallel", "2", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	s := out.String()
	for _, stage := range []string{"engine stage timings", "parse", "sema", "callgraph", "liveness", "total"} {
		if !strings.Contains(s, stage) {
			t.Errorf("-verbose output missing %q stage:\n%s", stage, s)
		}
	}
}

func TestCallGraphFlag(t *testing.T) {
	path := writeSample(t)
	for _, mode := range []string{"rta", "cha", "all"} {
		var out, errOut strings.Builder
		if code := run([]string{"-callgraph", mode, path}, &out, &errOut); code != 0 {
			t.Errorf("-callgraph %s: exit %d", mode, code)
		}
	}
	var out, errOut strings.Builder
	if code := run([]string{"-callgraph", "bogus", path}, &out, &errOut); code != 2 {
		t.Errorf("bogus mode should exit 2, got %d", code)
	}
}

func TestPerClassAndUnreachableFlags(t *testing.T) {
	path := writeSample(t)
	var out, errOut strings.Builder
	if code := run([]string{"-classes", "-unreachable", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	s := out.String()
	if !strings.Contains(s, "per-class breakdown") || !strings.Contains(s, "Gadget") {
		t.Errorf("missing per-class breakdown:\n%s", s)
	}
	if !strings.Contains(s, "unreachable function") {
		t.Errorf("missing unreachable section:\n%s", s)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args should exit 2, got %d", code)
	}
	if code := run([]string{"/does/not/exist.mcc"}, &out, &errOut); code != 1 {
		t.Errorf("missing file should exit 1, got %d", code)
	}
}

func TestAnalysisFlags(t *testing.T) {
	src := `
class LibBase {
public:
	virtual void onEvent() {}
	int libdata;
};
class App : public LibBase {
public:
	void* scratch;
	int   seen;
	App() : seen(0) { scratch = malloc(8); }
	~App() { free(scratch); }
	virtual void onEvent() { seen = seen + 1; }
};
int main() {
	App a;
	print(a.seen);
	return 0;
}
`
	path := filepath.Join(t.TempDir(), "lib.mcc")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	// Default: scratch is dead via the delete/free rule; libdata is dead
	// (LibBase is an ordinary class here, and nothing reads libdata).
	var out, errOut strings.Builder
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "App::scratch") {
		t.Errorf("scratch should be dead by default:\n%s", out.String())
	}

	// -no-delete-rule: scratch becomes live.
	out.Reset()
	if code := run([]string{"-no-delete-rule", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(out.String(), "App::scratch") {
		t.Errorf("-no-delete-rule should keep scratch live:\n%s", out.String())
	}

	// -library: LibBase members become unclassifiable and disappear from
	// the report.
	out.Reset()
	if code := run([]string{"-library", "LibBase", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(out.String(), "LibBase::libdata") {
		t.Errorf("-library should exclude libdata from the dead report:\n%s", out.String())
	}

	// -sizeof variants accepted; bogus rejected.
	out.Reset()
	if code := run([]string{"-sizeof", "conservative", path}, &out, &errOut); code != 0 {
		t.Fatalf("-sizeof conservative: exit %d", code)
	}
	if code := run([]string{"-sizeof", "sometimes", path}, &out, &errOut); code != 2 {
		t.Fatalf("bogus -sizeof should exit 2")
	}

	// -trust-downcasts accepted.
	out.Reset()
	if code := run([]string{"-trust-downcasts", path}, &out, &errOut); code != 0 {
		t.Fatalf("-trust-downcasts: exit %d", code)
	}
}

func TestCompileErrorExit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.mcc")
	if err := os.WriteFile(path, []byte("int main() { return x; }"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{path}, &out, &errOut); code != 1 {
		t.Errorf("compile error should exit 1, got %d", code)
	}
	if !strings.Contains(errOut.String(), "undeclared identifier") {
		t.Errorf("stderr missing diagnostic:\n%s", errOut.String())
	}
}

func TestMissingInputExit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.mcc")
	var out, errOut strings.Builder
	if code := run([]string{path}, &out, &errOut); code != 1 {
		t.Errorf("missing input should exit 1, got %d", code)
	}
	msg := errOut.String()
	if !strings.HasPrefix(msg, "deadmem: ") || strings.Count(strings.TrimRight(msg, "\n"), "\n") != 0 {
		t.Errorf("want a one-line deadmem diagnostic, got:\n%s", msg)
	}
	if strings.Contains(msg, "goroutine") {
		t.Errorf("diagnostic must not include a Go stack trace:\n%s", msg)
	}
}

func TestTimeoutFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ok.mcc")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	// A generous timeout must not perturb a normal run.
	var out, errOut strings.Builder
	if code := run([]string{"-timeout", "1m", path}, &out, &errOut); code != 0 {
		t.Fatalf("run with -timeout 1m failed (%d):\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Gadget::unused") {
		t.Errorf("output missing dead member:\n%s", out.String())
	}
}

// TestServerModeMatchesLocal: -server routes the analysis through
// deadmemd and the stdout must be byte-identical to a local run with the
// same flags.
func TestServerModeMatchesLocal(t *testing.T) {
	path := writeSample(t)
	var local, localErr strings.Builder
	if code := run([]string{"-v", "-classes", path}, &local, &localErr); code != 0 {
		t.Fatalf("local run: exit %d, stderr: %s", code, localErr.String())
	}

	srv, err := server.New(server.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var remote, remoteErr strings.Builder
	if code := run([]string{"-v", "-classes", "-server", ts.URL, path}, &remote, &remoteErr); code != 0 {
		t.Fatalf("remote run: exit %d, stderr: %s", code, remoteErr.String())
	}
	if remote.String() != local.String() {
		t.Errorf("remote output diverges from local:\n--- remote ---\n%s--- local ---\n%s",
			remote.String(), local.String())
	}
}

// TestServerModeUnreachable: a dead server exhausts retries and exits 1
// with a diagnostic, not a panic or a hang.
func TestServerModeUnreachable(t *testing.T) {
	path := writeSample(t)
	var out, errOut strings.Builder
	code := run([]string{"-server", "http://127.0.0.1:1", "-retries", "2", path}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("failed remote run wrote to stdout: %q", out.String())
	}
	if !strings.Contains(errOut.String(), "giving up after 2 attempts") {
		t.Errorf("stderr should name the retry budget, got: %s", errOut.String())
	}
}
