// Benchmarks regenerating each exhibit of the paper's evaluation, plus
// micro-benchmarks for the pipeline stages. Run with:
//
//	go test -bench=. -benchmem
package deadmembers_test

import (
	"fmt"
	"testing"

	"deadmembers/internal/bench"
	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/dynprof"
	"deadmembers/internal/engine"
	"deadmembers/internal/frontend"
	"deadmembers/internal/lexer"
	"deadmembers/internal/parser"
	"deadmembers/internal/report"
	"deadmembers/internal/source"
)

// BenchmarkTable1 measures producing the benchmark-characteristics table:
// compiling every corpus program and counting classes/members.
func BenchmarkTable1(b *testing.B) {
	corpus := bench.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bm := range corpus {
			r := frontend.Compile(bm.Sources...)
			if err := r.Err(); err != nil {
				b.Fatal(err)
			}
			res := deadmember.Analyze(r.Program, r.Graph, deadmember.Options{CallGraph: callgraph.RTA})
			if s := res.Stats(); s.Members == 0 {
				b.Fatal("no members")
			}
		}
	}
}

// BenchmarkFigure3 measures the static analysis (the paper's algorithm
// proper) per corpus benchmark, excluding frontend time.
func BenchmarkFigure3(b *testing.B) {
	for _, bm := range bench.All() {
		r := frontend.Compile(bm.Sources...)
		if err := r.Err(); err != nil {
			b.Fatal(err)
		}
		b.Run(bm.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := deadmember.Analyze(r.Program, r.Graph, deadmember.Options{CallGraph: callgraph.RTA})
				_ = res.Stats()
			}
		})
	}
}

// BenchmarkTable2 measures the full dynamic pipeline (analysis plus
// instrumented execution) per corpus benchmark — the cost of one Table 2
// row.
func BenchmarkTable2(b *testing.B) {
	for _, bm := range bench.All() {
		r := frontend.Compile(bm.Sources...)
		if err := r.Err(); err != nil {
			b.Fatal(err)
		}
		res := deadmember.Analyze(r.Program, r.Graph, deadmember.Options{CallGraph: callgraph.RTA})
		b.Run(bm.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dynprof.Run(res, dynprof.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure4 measures deriving the Figure 4 percentages, including
// the rendering, for the whole corpus.
func BenchmarkFigure4(b *testing.B) {
	results, err := report.CollectAll()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := report.Figure4(results); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkAblationCallGraph measures the call-graph ablation (ALL vs CHA
// vs RTA) on the largest corpus benchmark.
func BenchmarkAblationCallGraph(b *testing.B) {
	bm, err := bench.ByName("jikes")
	if err != nil {
		b.Fatal(err)
	}
	r := frontend.Compile(bm.Sources...)
	if err := r.Err(); err != nil {
		b.Fatal(err)
	}
	for _, mode := range []callgraph.Mode{callgraph.ALL, callgraph.CHA, callgraph.RTA} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := deadmember.Analyze(r.Program, r.Graph, deadmember.Options{CallGraph: mode})
				_ = res.Stats()
			}
		})
	}
}

// BenchmarkEngineSequentialVsParallel compares one full engine pass
// (compile + RTA analysis) over the whole corpus with a sequential
// pipeline against the parallel parse and liveness stages.
func BenchmarkEngineSequentialVsParallel(b *testing.B) {
	for _, workers := range []int{1, 0} { // 1 = sequential, 0 = all cores
		name := "sequential"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, bm := range bench.All() {
					c := engine.Compile(engine.Config{Workers: workers}, bm.Sources...)
					if err := c.Err(); err != nil {
						b.Fatal(err)
					}
					res := c.Analyze(deadmember.Options{CallGraph: callgraph.RTA})
					if s := res.Stats(); s.Members == 0 {
						b.Fatal("no members")
					}
				}
			}
		})
	}
}

// BenchmarkAblationCompileOnceVsRecompile measures the tentpole win: the
// six-variant ablation sweep over the corpus, either recompiling every
// benchmark per variant (the seed's behaviour) or compiling once per
// benchmark and reusing the Compilation — with the RTA variants also
// sharing one cached call graph.
func BenchmarkAblationCompileOnceVsRecompile(b *testing.B) {
	variants := []deadmember.Options{
		{CallGraph: callgraph.RTA},
		{CallGraph: callgraph.CHA},
		{CallGraph: callgraph.ALL},
		{CallGraph: callgraph.RTA, WritesAreUses: true},
		{CallGraph: callgraph.RTA, Sizeof: deadmember.SizeofConservative},
		{CallGraph: callgraph.RTA, NoDeleteSpecialCase: true},
	}
	b.Run("recompile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, bm := range bench.All() {
				for _, opts := range variants {
					r := frontend.Compile(bm.Sources...)
					if err := r.Err(); err != nil {
						b.Fatal(err)
					}
					_ = deadmember.Analyze(r.Program, r.Graph, opts).Stats()
				}
			}
		}
	})
	b.Run("compile-once", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			session := engine.NewSession(engine.Config{})
			for _, bm := range bench.All() {
				c := session.Compile(bm.Sources...)
				if err := c.Err(); err != nil {
					b.Fatal(err)
				}
				for _, opts := range variants {
					_ = c.Analyze(opts).Stats()
				}
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Pipeline-stage micro-benchmarks

func jikesSource(b *testing.B) frontend.Source {
	b.Helper()
	bm, err := bench.ByName("jikes")
	if err != nil {
		b.Fatal(err)
	}
	return bm.Sources[0]
}

func BenchmarkLexer(b *testing.B) {
	src := jikesSource(b)
	b.SetBytes(int64(len(src.Text)))
	for i := 0; i < b.N; i++ {
		fset := source.NewFileSet()
		f := fset.AddFile(src.Name, src.Text)
		diags := source.NewDiagnosticList(fset)
		toks := lexer.ScanAll(f, diags)
		if len(toks) == 0 || diags.HasErrors() {
			b.Fatal("lex failed")
		}
	}
}

func BenchmarkParser(b *testing.B) {
	src := jikesSource(b)
	b.SetBytes(int64(len(src.Text)))
	for i := 0; i < b.N; i++ {
		fset := source.NewFileSet()
		f := fset.AddFile(src.Name, src.Text)
		diags := source.NewDiagnosticList(fset)
		file := parser.ParseFile(f, diags)
		if file == nil || diags.HasErrors() {
			b.Fatal("parse failed")
		}
	}
}

func BenchmarkFrontend(b *testing.B) {
	src := jikesSource(b)
	b.SetBytes(int64(len(src.Text)))
	for i := 0; i < b.N; i++ {
		r := frontend.Compile(src)
		if err := r.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCallGraphRTA(b *testing.B) {
	r := frontend.Compile(jikesSource(b))
	if err := r.Err(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := callgraph.Build(r.Program, r.Graph, callgraph.Options{Mode: callgraph.RTA})
		if len(g.Reachable) == 0 {
			b.Fatal("empty call graph")
		}
	}
}

func BenchmarkInterpRichards(b *testing.B) {
	bm, err := bench.ByName("richards")
	if err != nil {
		b.Fatal(err)
	}
	r := frontend.Compile(bm.Sources...)
	if err := r.Err(); err != nil {
		b.Fatal(err)
	}
	res := deadmember.Analyze(r.Program, r.Graph, deadmember.Options{CallGraph: callgraph.RTA})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prof, err := dynprof.Run(res, dynprof.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if prof.Exec.ExitCode != 0 {
			b.Fatal("richards failed")
		}
	}
}

// BenchmarkAnalysisScaling measures how analysis time grows with program
// size. The paper's §3.4 argues the algorithm is effectively linear:
// O(N + C×M) for N expressions, C classes, M distinct member names.
// Compare ns/op across the sub-benchmarks: time per class should stay
// near-constant.
func BenchmarkAnalysisScaling(b *testing.B) {
	for _, classes := range []int{25, 50, 100, 200, 400} {
		spec := bench.Spec{
			Name: "scale", Description: "scaling probe",
			Classes: classes, UsedClasses: classes * 3 / 4,
			Members: classes * 4, DeadPercent: 10,
			Allocations: 10, RetainMod: 1, DeadHeavyClasses: 3,
			Seed: uint64(classes),
		}
		src, _ := bench.Generate(spec)
		r := frontend.Compile(frontend.Source{Name: "scale.mcc", Text: src})
		if err := r.Err(); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("classes=%d", classes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := deadmember.Analyze(r.Program, r.Graph, deadmember.Options{CallGraph: callgraph.RTA})
				_ = res.Stats()
			}
		})
	}
}

func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		all := bench.All()
		if len(all) != 11 {
			b.Fatal("bad corpus")
		}
	}
}
