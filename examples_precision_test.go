package deadmembers_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"deadmembers"
)

// The examples double as the precision-tier golden corpus: each file is
// linted at every tier and the rendered findings are held to the golden
// sets below, plus the structural guarantee paper ⊆ flow ⊆ heap.

func lintExample(t *testing.T, name string, p deadmembers.Precision) []string {
	t.Helper()
	path := filepath.Join("examples", "mcc", name)
	text, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := deadmembers.Compile(deadmembers.Source{Name: name, Text: string(text)})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	res := comp.Lint(deadmembers.Options{}, deadmembers.LintOptions{Precision: p})
	if res.Degraded() {
		t.Fatalf("%s at %s: degraded: %v", name, p, res.Failures)
	}
	var out []string
	for _, f := range res.Findings {
		out = append(out, fmt.Sprintf("%d:%d %s %s", f.Line, f.Col, f.Check, f.Member))
	}
	sort.Strings(out)
	return out
}

func TestExamplesPrecisionGolden(t *testing.T) {
	// Golden findings per tier, rendered as "line:col check member".
	golden := map[string]map[deadmembers.Precision][]string{
		"clean.mcc": {
			deadmembers.PrecisionPaper: nil,
			deadmembers.PrecisionFlow:  nil,
			deadmembers.PrecisionHeap:  nil,
		},
		"writeonly.mcc": {
			deadmembers.PrecisionPaper: {
				"10:9 write-only-member Cache::hits",
				"7:25 write-only-member Cache::hits",
			},
			deadmembers.PrecisionFlow: {
				"10:9 write-only-member Cache::hits",
				"7:25 write-only-member Cache::hits",
			},
			deadmembers.PrecisionHeap: {
				"10:9 write-only-member Cache::hits",
				"7:25 write-only-member Cache::hits",
			},
		},
		"overwrite.mcc": {
			deadmembers.PrecisionPaper: nil,
			deadmembers.PrecisionFlow:  {"10:9 dead-store Connection::timeout"},
			deadmembers.PrecisionHeap:  {"10:9 dead-store Connection::timeout"},
		},
		"chained.mcc": {
			deadmembers.PrecisionPaper: {"10:23 write-only-member Inner::pad"},
			deadmembers.PrecisionFlow:  {"10:23 write-only-member Inner::pad"},
			deadmembers.PrecisionHeap: {
				"10:23 write-only-member Inner::pad",
				"22:9 dead-store Inner::val",
			},
		},
	}

	entries, err := os.ReadDir(filepath.Join("examples", "mcc"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		want, ok := golden[name]
		if !ok {
			t.Errorf("%s: no golden entry; add one per tier", name)
			continue
		}
		for p, wantFindings := range want {
			got := lintExample(t, name, p)
			if !reflect.DeepEqual(got, wantFindings) {
				t.Errorf("%s at -precision=%s:\n got  %v\n want %v", name, p, got, wantFindings)
			}
		}
	}
}

// TestExamplesPrecisionMonotone asserts the structural tier guarantee
// over every example: each tier's findings are a superset of the tier
// below (paper ⊆ flow ⊆ heap), independent of the golden sets.
func TestExamplesPrecisionMonotone(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("examples", "mcc"))
	if err != nil {
		t.Fatal(err)
	}
	strictSomewhere := false
	for _, e := range entries {
		name := e.Name()
		paper := lintExample(t, name, deadmembers.PrecisionPaper)
		flow := lintExample(t, name, deadmembers.PrecisionFlow)
		heap := lintExample(t, name, deadmembers.PrecisionHeap)
		assertSubsetOf(t, name, "paper", paper, "flow", flow)
		assertSubsetOf(t, name, "flow", flow, "heap", heap)
		if len(heap) > len(paper) {
			strictSomewhere = true
		}
	}
	if !strictSomewhere {
		t.Error("heap tier should find strictly more than paper on at least one example")
	}
}

func assertSubsetOf(t *testing.T, file, lo string, small []string, hi string, big []string) {
	t.Helper()
	set := map[string]bool{}
	for _, f := range big {
		set[f] = true
	}
	for _, f := range small {
		if !set[f] {
			t.Errorf("%s: %s finding %q missing from %s tier", file, lo, f, hi)
		}
	}
}
