// Package deadmembers is the public API of this repository: a from-scratch
// reproduction of Sweeney & Tip, "A Study of Dead Data Members in C++
// Applications" (PLDI 1998).
//
// The library compiles MC++ (a substantial C++ subset), detects data
// members that are guaranteed dead — removable without changing observable
// behaviour — and measures, by executing the program on a built-in
// interpreter with an instrumented heap, how much object space those dead
// members occupy at run time.
//
// The pipeline is staged: Compile runs the frontend once and returns a
// Compilation that can be analyzed, profiled, or stripped many times under
// different Options without re-lexing, re-parsing, or re-typechecking:
//
//	comp, err := deadmembers.Compile(deadmembers.Source{Name: "app.mcc", Text: src})
//	result := comp.Analyze(deadmembers.Options{})
//	for _, f := range result.DeadMembers() {
//	    fmt.Println(f.QualifiedName())
//	}
//	ablated := comp.Analyze(deadmembers.Options{WritesAreUses: true})
//	profile, err := comp.Profile(deadmembers.Options{})
//	fmt.Println(profile.Ledger.DeadPercent())
//
// The one-shot helpers (Analyze, AnalyzeSource, ProfileProgram, Strip,
// Run) remain as thin wrappers that compile and run a single stage.
//
// The internal packages implement the full pipeline: lexer, parser, type
// checker, class hierarchy (member lookup + object layout), call graphs
// (ALL/CHA/RTA), the paper's detection algorithm, the interpreter, and
// the staged engine (internal/engine) with its parallel parse/liveness
// stages and compile-once session cache.
package deadmembers

import (
	"context"

	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/dynprof"
	"deadmembers/internal/engine"
	"deadmembers/internal/failure"
	"deadmembers/internal/frontend"
	"deadmembers/internal/heaplive"
	"deadmembers/internal/interp"
	"deadmembers/internal/lint"
	"deadmembers/internal/strip"
)

// Source is one named MC++ source file.
type Source = frontend.Source

// CallGraphMode selects call-graph precision. The zero value is RTA, the
// paper's configuration.
type CallGraphMode int

// Call graph modes, in decreasing order of precision.
const (
	CallGraphRTA CallGraphMode = iota
	CallGraphCHA
	CallGraphALL
)

func (m CallGraphMode) internal() callgraph.Mode {
	switch m {
	case CallGraphCHA:
		return callgraph.CHA
	case CallGraphALL:
		return callgraph.ALL
	default:
		return callgraph.RTA
	}
}

// Engine selects how MC++ programs are executed: the tree-walking
// interpreter (the default) or the bytecode VM with inline caches. Both
// engines produce byte-identical observable behaviour — output, exit
// codes, step counts, and instrumented heap records — so the choice is
// purely a performance knob.
type Engine = engine.Engine

// Execution engines.
const (
	EngineTree = engine.EngineTree
	EngineVM   = engine.EngineVM
)

// ParseEngine parses an -engine flag value ("tree" or "vm").
func ParseEngine(s string) (Engine, error) { return engine.ParseEngine(s) }

// SizeofPolicy controls how sizeof expressions are treated (paper §3.2).
type SizeofPolicy = deadmember.SizeofPolicy

// Sizeof policies. SizeofIgnore is the paper's benchmark setting.
const (
	SizeofIgnore       = deadmember.SizeofIgnore
	SizeofConservative = deadmember.SizeofConservative
)

// Options configures analysis and profiling. The zero value reproduces the
// paper's configuration: RTA call graph, sizeof ignored, delete/free
// special case enabled, downcasts treated conservatively.
type Options struct {
	// CallGraph selects the call-graph algorithm (default RTA).
	CallGraph CallGraphMode

	// Sizeof selects the sizeof policy (default SizeofIgnore).
	Sizeof SizeofPolicy

	// NoDeleteSpecialCase disables the delete/free rule (ablation).
	NoDeleteSpecialCase bool

	// TrustDowncasts disables the unsafe-cast rule for downcasts that the
	// user has verified safe (the paper verified all of its benchmarks').
	TrustDowncasts bool

	// WritesAreUses makes every write access mark a member live, the way a
	// naive "is it mentioned?" analysis would. The paper's §2 definition —
	// a member is dead when only written, because "data members are
	// typically initialized with a value in a constructor" — is exactly
	// what this switch disables; turning it on quantifies how few members
	// would be reported dead without the write/read distinction (ablation).
	WritesAreUses bool

	// LibraryClasses names classes whose source is nominally unavailable;
	// their members are unclassifiable and their virtual methods'
	// overriders become call-graph roots.
	LibraryClasses []string

	// MaxSteps bounds interpreter execution in ProfileProgram (0 = default).
	MaxSteps int64

	// Engine selects the execution engine for Profile/ProfileProgram
	// (default EngineTree). The profile is byte-identical either way.
	Engine Engine
}

func (o Options) analysisOptions() deadmember.Options {
	return deadmember.Options{
		CallGraph:           o.CallGraph.internal(),
		Sizeof:              o.Sizeof,
		NoDeleteSpecialCase: o.NoDeleteSpecialCase,
		TrustDowncasts:      o.TrustDowncasts,
		WritesAreUses:       o.WritesAreUses,
		LibraryClasses:      o.LibraryClasses,
	}
}

// Result is a completed static analysis (see internal/deadmember for the
// full accessor set).
type Result = deadmember.Result

// Failure is a structured record of a panic contained by the pipeline:
// the stage and unit that crashed, the recovered value, and a stable
// stack digest. Failures never abort a run — the artifact is salvaged
// and marked degraded instead.
type Failure = failure.Failure

// LintOptions configures the flow-sensitive lint pass.
type LintOptions struct {
	// Budget caps dataflow solver steps per function (0 = automatic).
	Budget int

	// Precision selects the liveness tier — PrecisionPaper,
	// PrecisionFlow (the zero-value default), or PrecisionHeap.
	Precision Precision
}

// Precision selects the lint liveness tier (see internal/heaplive):
// paper ⊆ flow ⊆ heap.
type Precision = heaplive.Precision

// Precision tiers, re-exported for LintOptions.
const (
	PrecisionPaper = heaplive.PrecisionPaper
	PrecisionFlow  = heaplive.PrecisionFlow
	PrecisionHeap  = heaplive.PrecisionHeap
)

// LintFinding is one flow-sensitive diagnostic.
type LintFinding = lint.Finding

// LintResult is a completed lint run: position-sorted findings plus the
// degradation record (contained panics and budget overruns).
type LintResult = lint.Result

// Profile is a completed dynamic measurement.
type Profile = dynprof.Profile

// ExecResult reports a plain (unprofiled) execution.
type ExecResult = interp.Result

// Timings records per-stage wall-clock durations of the pipeline.
type Timings = engine.Timings

// CompileConfig controls how the engine executes — never what it
// computes: any configuration yields byte-identical results.
type CompileConfig struct {
	// Workers bounds the parallelism of the parse and liveness stages.
	// 0 means GOMAXPROCS; 1 forces sequential execution.
	Workers int
}

// Compilation is a compiled program: the reusable artifact of the
// frontend stages. Analyze/Profile/Strip/Run execute the later pipeline
// stages against it; compiling once and analyzing many times is the
// intended idiom for sweeps and services.
type Compilation struct {
	eng *engine.Compilation
}

// Compile runs the frontend (parallel lex/parse, then semantic analysis)
// over the sources once, returning the reusable Compilation.
func Compile(sources ...Source) (*Compilation, error) {
	return CompileWith(CompileConfig{}, sources...)
}

// CompileWith is Compile under an explicit execution configuration.
func CompileWith(cfg CompileConfig, sources ...Source) (*Compilation, error) {
	return CompileWithContext(context.Background(), cfg, sources...)
}

// CompileContext is Compile under a context: cancellation or deadline
// expiry aborts the frontend between work items and is reported as the
// returned error.
func CompileContext(ctx context.Context, sources ...Source) (*Compilation, error) {
	return CompileWithContext(ctx, CompileConfig{}, sources...)
}

// CompileWithContext is CompileWith under a context.
func CompileWithContext(ctx context.Context, cfg CompileConfig, sources ...Source) (*Compilation, error) {
	c := engine.CompileContext(ctx, engine.Config{Workers: cfg.Workers}, sources...)
	if err := c.Err(); err != nil {
		return nil, err
	}
	return &Compilation{eng: c}, nil
}

// Degraded reports whether a panic was contained while compiling: the
// crashing unit was dropped and the rest of the program salvaged. Consult
// Failures for the structured diagnostics.
func (c *Compilation) Degraded() bool { return c.eng.Degraded() }

// Failures lists the panics contained during compilation, in a
// deterministic order.
func (c *Compilation) Failures() []*Failure { return c.eng.Failures }

// Analyze runs the dead-data-member analysis. Repeated calls reuse the
// compiled program (and the call graph, when only marking rules differ).
func (c *Compilation) Analyze(opts Options) *Result {
	return c.eng.Analyze(opts.analysisOptions())
}

// AnalyzeContext is Analyze under a context: cancellation is polled
// between functions in the liveness pass and reported as the returned
// error.
func (c *Compilation) AnalyzeContext(ctx context.Context, opts Options) (*Result, error) {
	return c.eng.AnalyzeContext(ctx, opts.analysisOptions())
}

// AnalyzeTimed is Analyze plus per-stage wall-clock timings (Parse/Sema
// are the compilation's; CallGraph/Liveness are this call's).
func (c *Compilation) AnalyzeTimed(opts Options) (*Result, Timings) {
	return c.eng.AnalyzeTimed(opts.analysisOptions())
}

// AnalyzeTimedContext is AnalyzeTimed under a context.
func (c *Compilation) AnalyzeTimedContext(ctx context.Context, opts Options) (*Result, Timings, error) {
	return c.eng.AnalyzeTimedContext(ctx, opts.analysisOptions())
}

// Lint runs the flow-sensitive diagnostics — dead-store detection and
// write-only-member corroboration — on top of the analysis, returning
// findings sorted by (file, line, col, check).
func (c *Compilation) Lint(opts Options, lopts LintOptions) *LintResult {
	return c.eng.Lint(opts.analysisOptions(), lint.Options{Budget: lopts.Budget, Precision: lopts.Precision})
}

// LintContext is Lint under a context, with per-stage timings. An
// interrupted run returns the context's error and a nil result.
func (c *Compilation) LintContext(ctx context.Context, opts Options, lopts LintOptions) (*LintResult, Timings, error) {
	return c.eng.LintContext(ctx, opts.analysisOptions(), lint.Options{Budget: lopts.Budget, Precision: lopts.Precision})
}

// Profile analyzes and then executes the program with an instrumented
// heap, attributing bytes to the dead members found.
func (c *Compilation) Profile(opts Options) (*Profile, error) {
	return c.ProfileContext(context.Background(), opts)
}

// ProfileContext is Profile under a context: cancellation or deadline
// expiry is polled at the interpreter's step boundary and aborts the run
// with an error satisfying errors.Is(err, ctx.Err()).
func (c *Compilation) ProfileContext(ctx context.Context, opts Options) (*Profile, error) {
	return c.eng.ProfileContextEngine(ctx, opts.analysisOptions(), dynprof.Options{MaxSteps: opts.MaxSteps}, opts.Engine)
}

// Run executes the program without instrumentation.
func (c *Compilation) Run() (*ExecResult, error) {
	return c.eng.Run()
}

// RunContext is Run under a context (see ProfileContext).
func (c *Compilation) RunContext(ctx context.Context) (*ExecResult, error) {
	return c.eng.RunContext(ctx)
}

// RunEngine executes the program without instrumentation on the
// selected engine.
func (c *Compilation) RunEngine(eng Engine) (*ExecResult, error) {
	return c.RunContextEngine(context.Background(), eng)
}

// RunContextEngine is RunEngine under a context (see ProfileContext).
func (c *Compilation) RunContextEngine(ctx context.Context, eng Engine) (*ExecResult, error) {
	return c.eng.RunContextEngine(ctx, eng)
}

// Strip analyzes and removes the dead data members (and unreachable
// functions) whose elimination is provably behaviour preserving. The
// transform consumes the compilation (its syntax trees are rewritten in
// place): do not call Analyze/Profile/Run on it afterwards — compile
// StripResult.Sources instead.
func (c *Compilation) Strip(opts Options, stripOpts StripOptions) *StripResult {
	return c.eng.Strip(opts.analysisOptions(), stripOpts)
}

// Timings returns the frontend stage durations of this compilation.
func (c *Compilation) Timings() Timings { return c.eng.Timings() }

// Fingerprint returns the content hash identifying the compiled sources.
func (c *Compilation) Fingerprint() string { return c.eng.Fingerprint }

// Analyze compiles the sources and runs the dead-data-member analysis.
func Analyze(opts Options, sources ...Source) (*Result, error) {
	c, err := Compile(sources...)
	if err != nil {
		return nil, err
	}
	return c.Analyze(opts), nil
}

// AnalyzeSource analyzes a single source file.
func AnalyzeSource(name, text string, opts Options) (*Result, error) {
	return Analyze(opts, Source{Name: name, Text: text})
}

// ProfileProgram analyzes the sources and then executes the program with
// an instrumented heap, attributing bytes to the dead members found.
func ProfileProgram(opts Options, sources ...Source) (*Profile, error) {
	c, err := Compile(sources...)
	if err != nil {
		return nil, err
	}
	return c.Profile(opts)
}

// ProfileSource profiles a single source file.
func ProfileSource(name, text string, opts Options) (*Profile, error) {
	return ProfileProgram(opts, Source{Name: name, Text: text})
}

// StripOptions configures the dead-member elimination transform.
type StripOptions = strip.Options

// StripResult reports what the transform removed (and what it refused to
// remove, with reasons).
type StripResult = strip.Result

// Strip analyzes the sources and removes the dead data members (and
// unreachable functions) whose elimination is provably behaviour
// preserving, returning the transformed program — the space optimization
// the paper proposes for "any optimizing compiler".
func Strip(opts Options, stripOpts StripOptions, sources ...Source) (*StripResult, error) {
	c, err := Compile(sources...)
	if err != nil {
		return nil, err
	}
	return c.Strip(opts, stripOpts), nil
}

// Run compiles and executes the sources without instrumentation,
// returning the program's exit code and captured output.
func Run(sources ...Source) (*ExecResult, error) {
	c, err := Compile(sources...)
	if err != nil {
		return nil, err
	}
	return c.Run()
}
