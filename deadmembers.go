// Package deadmembers is the public API of this repository: a from-scratch
// reproduction of Sweeney & Tip, "A Study of Dead Data Members in C++
// Applications" (PLDI 1998).
//
// The library compiles MC++ (a substantial C++ subset), detects data
// members that are guaranteed dead — removable without changing observable
// behaviour — and measures, by executing the program on a built-in
// interpreter with an instrumented heap, how much object space those dead
// members occupy at run time.
//
// Typical use:
//
//	result, err := deadmembers.AnalyzeSource("app.mcc", src, deadmembers.Options{})
//	for _, f := range result.DeadMembers() {
//	    fmt.Println(f.QualifiedName())
//	}
//	profile, err := deadmembers.ProfileSource("app.mcc", src, deadmembers.Options{})
//	fmt.Println(profile.Ledger.DeadPercent())
//
// The internal packages implement the full pipeline: lexer, parser, type
// checker, class hierarchy (member lookup + object layout), call graphs
// (ALL/CHA/RTA), the paper's detection algorithm, and the interpreter.
package deadmembers

import (
	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/dynprof"
	"deadmembers/internal/frontend"
	"deadmembers/internal/interp"
	"deadmembers/internal/strip"
)

// Source is one named MC++ source file.
type Source = frontend.Source

// CallGraphMode selects call-graph precision. The zero value is RTA, the
// paper's configuration.
type CallGraphMode int

// Call graph modes, in decreasing order of precision.
const (
	CallGraphRTA CallGraphMode = iota
	CallGraphCHA
	CallGraphALL
)

func (m CallGraphMode) internal() callgraph.Mode {
	switch m {
	case CallGraphCHA:
		return callgraph.CHA
	case CallGraphALL:
		return callgraph.ALL
	default:
		return callgraph.RTA
	}
}

// SizeofPolicy controls how sizeof expressions are treated (paper §3.2).
type SizeofPolicy = deadmember.SizeofPolicy

// Sizeof policies. SizeofIgnore is the paper's benchmark setting.
const (
	SizeofIgnore       = deadmember.SizeofIgnore
	SizeofConservative = deadmember.SizeofConservative
)

// Options configures analysis and profiling. The zero value reproduces the
// paper's configuration: RTA call graph, sizeof ignored, delete/free
// special case enabled, downcasts treated conservatively.
type Options struct {
	// CallGraph selects the call-graph algorithm (default RTA).
	CallGraph CallGraphMode

	// Sizeof selects the sizeof policy (default SizeofIgnore).
	Sizeof SizeofPolicy

	// NoDeleteSpecialCase disables the delete/free rule (ablation).
	NoDeleteSpecialCase bool

	// TrustDowncasts disables the unsafe-cast rule for downcasts that the
	// user has verified safe (the paper verified all of its benchmarks').
	TrustDowncasts bool

	// LibraryClasses names classes whose source is nominally unavailable;
	// their members are unclassifiable and their virtual methods'
	// overriders become call-graph roots.
	LibraryClasses []string

	// MaxSteps bounds interpreter execution in ProfileProgram (0 = default).
	MaxSteps int64
}

func (o Options) analysisOptions() deadmember.Options {
	return deadmember.Options{
		CallGraph:           o.CallGraph.internal(),
		Sizeof:              o.Sizeof,
		NoDeleteSpecialCase: o.NoDeleteSpecialCase,
		TrustDowncasts:      o.TrustDowncasts,
		LibraryClasses:      o.LibraryClasses,
	}
}

// Result is a completed static analysis (see internal/deadmember for the
// full accessor set).
type Result = deadmember.Result

// Profile is a completed dynamic measurement.
type Profile = dynprof.Profile

// ExecResult reports a plain (unprofiled) execution.
type ExecResult = interp.Result

// Analyze compiles the sources and runs the dead-data-member analysis.
func Analyze(opts Options, sources ...Source) (*Result, error) {
	r := frontend.Compile(sources...)
	if err := r.Err(); err != nil {
		return nil, err
	}
	return deadmember.Analyze(r.Program, r.Graph, opts.analysisOptions()), nil
}

// AnalyzeSource analyzes a single source file.
func AnalyzeSource(name, text string, opts Options) (*Result, error) {
	return Analyze(opts, Source{Name: name, Text: text})
}

// ProfileProgram analyzes the sources and then executes the program with
// an instrumented heap, attributing bytes to the dead members found.
func ProfileProgram(opts Options, sources ...Source) (*Profile, error) {
	res, err := Analyze(opts, sources...)
	if err != nil {
		return nil, err
	}
	return dynprof.Run(res, dynprof.Options{MaxSteps: opts.MaxSteps})
}

// ProfileSource profiles a single source file.
func ProfileSource(name, text string, opts Options) (*Profile, error) {
	return ProfileProgram(opts, Source{Name: name, Text: text})
}

// StripOptions configures the dead-member elimination transform.
type StripOptions = strip.Options

// StripResult reports what the transform removed (and what it refused to
// remove, with reasons).
type StripResult = strip.Result

// Strip analyzes the sources and removes the dead data members (and
// unreachable functions) whose elimination is provably behaviour
// preserving, returning the transformed program — the space optimization
// the paper proposes for "any optimizing compiler".
func Strip(opts Options, stripOpts StripOptions, sources ...Source) (*StripResult, error) {
	res, err := Analyze(opts, sources...)
	if err != nil {
		return nil, err
	}
	return strip.Apply(res, stripOpts), nil
}

// Run compiles and executes the sources without instrumentation,
// returning the program's exit code and captured output.
func Run(sources ...Source) (*ExecResult, error) {
	r := frontend.Compile(sources...)
	if err := r.Err(); err != nil {
		return nil, err
	}
	return interp.Run(r.Program, r.Graph, interp.Options{})
}
