# Stdlib-only Go module; no code generation, no external tools.

GO ?= go

.PHONY: build vet test race bench fuzz ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Short fuzzing smoke over each target (the checked-in corpus under
# testdata/fuzz/ is replayed by plain `make test` already).
FUZZTIME ?= 20s
fuzz:
	$(GO) test -fuzz=FuzzCompile -fuzztime=$(FUZZTIME) .
	$(GO) test -fuzz=FuzzAnalyze -fuzztime=$(FUZZTIME) .
	$(GO) test -fuzz=FuzzStripRoundTrip -fuzztime=$(FUZZTIME) .

# What CI runs (see .github/workflows/ci.yml).
ci: build vet race
