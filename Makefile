# Stdlib-only Go module; no code generation, no external tools.

GO ?= go

.PHONY: build vet test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# What CI runs (see .github/workflows/ci.yml).
ci: build vet race
