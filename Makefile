# Stdlib-only Go module; no code generation, no external tools.

GO ?= go

.PHONY: build vet fmt-check lint test race race-server bench bench-vm fuzz serve smoke-server smoke-restart smoke-fleet smoke-precision smoke-vm chaos-smoke check ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Formatting gate: gofmt must be a no-op over the tree. staticcheck is
# unavailable offline, so the static gate is go vet + this.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# deadlint smoke over the example programs. Each example is a complete
# program with its own main(), so they are linted one file at a time.
# deadlint exits 0 even when it reports findings; only compile errors,
# degraded runs, and usage mistakes fail the target.
lint: vet fmt-check
	$(GO) build -o bin/deadlint ./cmd/deadlint
	for f in examples/mcc/*.mcc; do bin/deadlint $$f || exit 1; done

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race pass over the concurrency-heavy layers (the server's
# singleflight/admission paths and the engine's session cache).
race-server:
	$(GO) test -race ./internal/server/... ./internal/engine/...

# Run the analysis daemon locally (see cmd/deadmemd for flags).
ADDR ?= 127.0.0.1:8100
serve:
	$(GO) build -o bin/deadmemd ./cmd/deadmemd
	bin/deadmemd -addr $(ADDR)

# End-to-end smoke: start deadmemd, probe /healthz, and diff /v1/analyze
# and /v1/lint responses against deadmem/deadlint stdout byte-for-byte.
smoke-server:
	sh scripts/smoke_server.sh

# Warm-restart smoke: persist an artifact, SIGKILL the daemon, restart
# over the same -persist-dir, and verify the response is served from
# disk byte-identically with zero recompiles.
smoke-restart:
	sh scripts/smoke_restart.sh

# Fleet smoke: three workers behind a coordinator, /v1/batch over the
# example corpus, one worker SIGKILLed mid-batch; no unit lost, every
# body byte-identical to the CLIs, ejection observed in the metrics.
smoke-fleet:
	sh scripts/smoke_fleet.sh

# Precision smoke: paperbench -precision -timings (the frontier sweeps
# all three liveness tiers in one session), then deadlint at each tier
# over the chained example asserting paper <= flow <= heap monotonicity.
smoke-precision:
	sh scripts/smoke_precision.sh

# Engine smoke: every example program under tree and VM, plain and
# profiled (also at -parallel 4), byte-identical; then the paperbench
# -engines exhibit with zero diverged rows.
smoke-vm:
	sh scripts/smoke_vm.sh

# Chaos soaks under the race detector: faulty disk + faulty network,
# abrupt in-test kill and restart, byte-identity and zero-lost-work
# asserted throughout (see internal/server/chaos_soak_test.go and
# internal/fleet/soak_test.go).
chaos-smoke:
	$(GO) test -race -run TestChaosSoak -v ./internal/server/
	$(GO) test -race -run TestFleetChaosSoak -v ./internal/fleet/

bench:
	$(GO) test -bench=. -benchmem

# Engine throughput snapshot over the 10-50x large corpus: runs each
# large benchmark to completion under both engines (the tree runs take
# about a minute each — this is a benchmarking target, not a CI gate)
# and writes the steps/sec comparison to BENCH_vm.json.
bench-vm:
	$(GO) build -o bin/paperbench ./cmd/paperbench
	bin/paperbench -engines -large -json >BENCH_vm.json
	cat BENCH_vm.json

# Short fuzzing smoke over each target (the checked-in corpus under
# testdata/fuzz/ is replayed by plain `make test` already).
FUZZTIME ?= 20s
fuzz:
	$(GO) test -fuzz=FuzzCompile -fuzztime=$(FUZZTIME) .
	$(GO) test -fuzz=FuzzAnalyze -fuzztime=$(FUZZTIME) .
	$(GO) test -fuzz=FuzzStripRoundTrip -fuzztime=$(FUZZTIME) .
	$(GO) test -fuzz=FuzzCFG -fuzztime=$(FUZZTIME) .
	$(GO) test -fuzz=FuzzVMDifferential -fuzztime=$(FUZZTIME) .

# The quick local gate: build + static checks + tests + the engine
# smoke. Slower CI-only passes (race soaks, server smokes) stay out.
check: build vet fmt-check test smoke-vm

# What CI runs (see .github/workflows/ci.yml).
ci: build vet race race-server lint smoke-server smoke-restart smoke-fleet smoke-precision smoke-vm chaos-smoke
